#include "measure/task_profiler.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace taskprof {

ThreadTaskProfiler::ThreadTaskProfiler(ThreadId thread, const Clock& clock,
                                       RegionHandle implicit_region,
                                       MeasureOptions options)
    : thread_(thread), clock_(&clock), options_(options) {
  pool_.set_lookup_acceleration(options_.child_lookup_acceleration);
  implicit_root_ =
      pool_.allocate(implicit_region, kNoParameter, false, nullptr);
  implicit_root_->visits = 1;
  implicit_stack_.push_back(ImplicitFrame{implicit_root_, clock_->now()});
}

ThreadTaskProfiler::~ThreadTaskProfiler() = default;

void ThreadTaskProfiler::enter(RegionHandle region, std::int64_t parameter) {
  const Ticks now = clock_->now();
  const std::size_t limit = options_.max_tree_depth;
  if (current_ == nullptr) {
    if (limit != 0 &&
        (implicit_folded_ > 0 || implicit_stack_.size() >= limit)) {
      ++implicit_folded_;
      ++total_folds_;
      return;
    }
    CallNode* parent = implicit_stack_.back().node;
    CallNode* node =
        find_or_create_child(pool_, parent, region, parameter, false);
    ++node->visits;
    implicit_stack_.push_back(ImplicitFrame{node, now});
  } else {
    TaskInstanceState& inst = *current_;
    TASKPROF_ASSERT(!inst.stack.empty(), "task instance has no open root");
    if (limit != 0 && (inst.folded > 0 || inst.stack.size() >= limit)) {
      ++inst.folded;
      ++total_folds_;
      return;
    }
    CallNode* parent = inst.stack.back().node;
    if (parent == nullptr) {
      // First enter inside a lazily-materialized instance: build the
      // instance-tree root now (see task_begin).
      TASKPROF_ASSERT(inst.stack.size() == 1 && inst.root == nullptr,
                      "unmaterialized frame below the instance root");
      inst.root = inst.home_pool->allocate(inst.task_region, inst.parameter,
                                           false, nullptr);
      ++inst.root->visits;
      inst.stack.front().node = inst.root;
      parent = inst.root;
    }
    CallNode* node = find_or_create_child(*inst.home_pool, parent, region,
                                          parameter, false);
    ++node->visits;
    inst.stack.push_back(
        TaskInstanceState::Frame{node, now, inst.suspended_total});
  }
}

void ThreadTaskProfiler::exit(RegionHandle region) {
  const Ticks now = clock_->now();
  if (current_ == nullptr) {
    if (implicit_folded_ > 0) {
      --implicit_folded_;
      return;
    }
    TASKPROF_ASSERT(implicit_stack_.size() > 1,
                    "exit would pop the implicit root; use finalize()");
    ImplicitFrame frame = implicit_stack_.back();
    TASKPROF_ASSERT(frame.node->region == region && !frame.node->is_stub,
                    "exit region does not match innermost open region");
    const Ticks duration = now - frame.enter_time;
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
    implicit_stack_.pop_back();
  } else {
    TaskInstanceState& inst = *current_;
    if (inst.folded > 0) {
      --inst.folded;
      return;
    }
    TASKPROF_ASSERT(inst.stack.size() > 1,
                    "exit would pop the task root; task_end does that");
    TaskInstanceState::Frame frame = inst.stack.back();
    TASKPROF_ASSERT(frame.node->region == region,
                    "exit region does not match innermost open region");
    Ticks duration = now - frame.enter_time;
    if (options_.pause_on_suspend) {
      duration -= inst.suspended_total - frame.suspended_at_enter;
    }
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
    inst.stack.pop_back();
  }
}

void ThreadTaskProfiler::task_begin(RegionHandle task_region,
                                    TaskInstanceId id,
                                    std::int64_t parameter) {
  TASKPROF_ASSERT(id != kImplicitTaskId, "instance id 0 is the implicit task");
  TASKPROF_ASSERT(find_instance(id) == nullptr, "instance id already active");
  const Ticks now = clock_->now();

  // "Create task instance specific data" (Fig. 12, TaskBegin).
  std::unique_ptr<TaskInstanceState> state;
  if (!instance_freelist_.empty()) {
    state = std::move(instance_freelist_.back());
    instance_freelist_.pop_back();
  } else {
    state = std::make_unique<TaskInstanceState>();
  }
  state->id = id;
  state->task_region = task_region;
  state->parameter = parameter;
  state->home_pool = &pool_;
  state->home_thread = thread_;
  // Lazy instance-tree materialization: most instances of non-cut-off
  // recursion never enter a region, so their tree would be the root node
  // alone.  Defer allocating it until the first child enter; a leaf
  // instance then folds straight into the merged node at task_end
  // without ever touching the pool.
  state->root = options_.leaf_fast_path
                    ? nullptr
                    : pool_.allocate(task_region, parameter, false, nullptr);
  if (options_.creation_site_attribution && creation_sites_ != nullptr) {
    if (auto it = creation_sites_->find(id); it != creation_sites_->end()) {
      state->creation_node = it->second;
      creation_sites_->erase(it);
    }
  }

  instances_.push_back(std::move(state));
  TaskInstanceState* inst = instances_.back().get();
  max_active_ = std::max(max_active_, instances_.size());

  // TaskSwitch(task instance) then Enter(task instance, task region).
  switch_to(inst, now);
  if (inst->root != nullptr) ++inst->root->visits;
  inst->stack.push_back(TaskInstanceState::Frame{inst->root, now, 0});
}

void ThreadTaskProfiler::task_end(TaskInstanceId id) {
  const Ticks now = clock_->now();
  TASKPROF_ASSERT(current_ != nullptr && current_->id == id,
                  "task_end requires the ending task to be current");
  TaskInstanceState& inst = *current_;
  TASKPROF_ASSERT(inst.folded == 0, "folded frames open at task end");
  TASKPROF_ASSERT(inst.stack.size() == 1,
                  "unbalanced enter/exit inside task instance");

  // Exit(task instance, task region).
  TaskInstanceState::Frame frame = inst.stack.back();
  Ticks duration = now - frame.enter_time;
  if (options_.pause_on_suspend) {
    duration -= inst.suspended_total - frame.suspended_at_enter;
  }
  if (frame.node != nullptr) {
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
  }
  inst.stack.pop_back();

  // TaskSwitch(implicit task).
  switch_to(nullptr, now);

  // "Merge task tree into global profile of thread."  A still-null root
  // means the instance stayed a leaf; `duration` is its whole life.
  merge_and_recycle(take_instance(id), duration);
}

void ThreadTaskProfiler::task_switch(TaskInstanceId id) {
  const Ticks now = clock_->now();
  if (id == kImplicitTaskId) {
    switch_to(nullptr, now);
    return;
  }
  TaskInstanceState* inst = find_instance(id);
  TASKPROF_ASSERT(inst != nullptr, "task_switch to unknown instance");
  switch_to(inst, now);
}

void ThreadTaskProfiler::note_task_created(TaskInstanceId id) {
  if (!options_.creation_site_attribution) return;
  // Only implicit-task creation sites are stable for the lifetime of the
  // created instance (instance trees are merged and recycled); see header.
  if (current_ != nullptr) return;
  if (creation_sites_ == nullptr) {
    creation_sites_ =
        std::make_unique<std::unordered_map<TaskInstanceId, CallNode*>>();
  }
  (*creation_sites_)[id] = implicit_stack_.back().node;
}

std::unique_ptr<TaskInstanceState> ThreadTaskProfiler::detach_instance(
    TaskInstanceId id) {
  TASKPROF_ASSERT(current_ == nullptr || current_->id != id,
                  "cannot detach the running instance");
  auto state = take_instance(id);
  TASKPROF_ASSERT(state != nullptr, "detach of unknown instance");
  return state;
}

void ThreadTaskProfiler::adopt_instance(
    std::unique_ptr<TaskInstanceState> state) {
  TASKPROF_ASSERT(state != nullptr, "adopt requires an instance");
  TASKPROF_ASSERT(find_instance(state->id) == nullptr,
                  "instance id already active on this thread");
  instances_.push_back(std::move(state));
  max_active_ = std::max(max_active_, instances_.size());
}

void ThreadTaskProfiler::finalize() {
  TASKPROF_ASSERT(current_ == nullptr,
                  "finalize while an explicit task is current");
  TASKPROF_ASSERT(instances_.empty(), "finalize with active task instances");
  const Ticks now = clock_->now();
  while (!implicit_stack_.empty()) {
    ImplicitFrame frame = implicit_stack_.back();
    const Ticks duration = now - frame.enter_time;
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
    implicit_stack_.pop_back();
  }
}

ThreadProfileView ThreadTaskProfiler::view() const {
  ThreadProfileView out;
  out.thread = thread_;
  out.implicit_root = implicit_root_;
  out.task_roots.assign(task_roots_.begin(), task_roots_.end());
  out.max_concurrent_instances = max_active_;
  out.task_switches = task_switches_;
  out.folded_events = total_folds_;
  return out;
}

TaskInstanceId ThreadTaskProfiler::current_task() const noexcept {
  return current_ == nullptr ? kImplicitTaskId : current_->id;
}

void ThreadTaskProfiler::enter_stub(const TaskInstanceState& instance,
                                    Ticks now) {
  CallNode* parent = implicit_stack_.back().node;
  CallNode* node = find_or_create_child(pool_, parent, instance.task_region,
                                        instance.parameter, /*is_stub=*/true);
  ++node->visits;
  implicit_stack_.push_back(ImplicitFrame{node, now});
}

void ThreadTaskProfiler::exit_stub(Ticks now) {
  TASKPROF_ASSERT(implicit_stack_.size() > 1, "no stub frame open");
  ImplicitFrame frame = implicit_stack_.back();
  TASKPROF_ASSERT(frame.node->is_stub, "innermost implicit frame is no stub");
  const Ticks duration = now - frame.enter_time;
  frame.node->inclusive += duration;
  frame.node->visit_stats.add(duration);
  implicit_stack_.pop_back();
}

void ThreadTaskProfiler::switch_to(TaskInstanceState* target, Ticks now) {
  if (target == current_) return;
  ++task_switches_;
  if (current_ != nullptr) {
    // "Exit(implicit task, root region of current task); stop time
    // measurement on all open regions of current task" (Fig. 12).
    if (options_.stub_nodes) exit_stub(now);
    current_->suspended = true;
    current_->suspend_start = now;
  }
  current_ = target;
  if (target != nullptr) {
    if (target->suspended) {
      if (options_.pause_on_suspend) {
        target->suspended_total += now - target->suspend_start;
      }
      target->suspended = false;
    }
    // "Enter(implicit task, root region of task instance)" (Fig. 12).
    if (options_.stub_nodes) enter_stub(*target, now);
  }
}

void ThreadTaskProfiler::merge_and_recycle(
    std::unique_ptr<TaskInstanceState> instance, Ticks leaf_duration) {
  TASKPROF_ASSERT(instance != nullptr, "merge of null instance");
  CallNode* target = nullptr;
  if (options_.creation_site_attribution &&
      instance->creation_node != nullptr) {
    target = find_or_create_child(pool_, instance->creation_node,
                                  instance->task_region, instance->parameter,
                                  false);
  } else {
    target = merged_root_for(instance->task_region, instance->parameter);
  }
  CallNode* root = instance->root;
  if (root == nullptr) {
    // Leaf fast path: the instance never entered a region, so its tree
    // was never materialized (see task_begin) — the dominant case for
    // non-cut-off BOTS recursion.  One visit of `leaf_duration` folds
    // straight into the merged node; no tree walk, no pool traffic.
    ++target->visits;
    target->inclusive += leaf_duration;
    target->visit_stats.add(leaf_duration);
  } else {
    if (options_.leaf_fast_path && root->first_child == nullptr) {
      // Materialized but still a single node: one add + stats merge, no
      // find-or-create descent.
      target->visits += root->visits;
      target->inclusive += root->inclusive;
      target->visit_stats.merge(root->visit_stats);
    } else {
      merge_subtree(pool_, target, root);
    }
    instance->home_pool->release_subtree(root);
  }
  instance->reset();
  instance_freelist_.push_back(std::move(instance));
}

TaskInstanceState* ThreadTaskProfiler::find_instance(
    TaskInstanceId id) noexcept {
  if (last_hit_ < instances_.size() && instances_[last_hit_]->id == id) {
    return instances_[last_hit_].get();
  }
  // Backward scan: with LIFO scheduling the sought instance is almost
  // always the most recently added one.
  for (std::size_t i = instances_.size(); i-- > 0;) {
    if (instances_[i]->id == id) {
      last_hit_ = i;
      return instances_[i].get();
    }
  }
  return nullptr;
}

std::unique_ptr<TaskInstanceState> ThreadTaskProfiler::take_instance(
    TaskInstanceId id) {
  if (find_instance(id) == nullptr) return nullptr;  // also sets last_hit_
  // Swap-and-pop: instance order carries no meaning (lookups only), and
  // the heap addresses current_ and callers hold stay valid.
  std::swap(instances_[last_hit_], instances_.back());
  std::unique_ptr<TaskInstanceState> out = std::move(instances_.back());
  instances_.pop_back();
  last_hit_ = 0;
  return out;
}

CallNode* ThreadTaskProfiler::merged_root_for(RegionHandle region,
                                              std::int64_t parameter) {
  // Last-hit first: completions of the same construct come in runs
  // (LIFO scheduling drains one recursion's tasks together).
  if (CallNode* last = last_merged_root_;
      last != nullptr && last->region == region &&
      last->parameter == parameter) {
    return last;
  }
  CallNode* root = nullptr;
  if (merged_root_index_active_) {
    root = merged_root_index_.find(region, parameter, false);
  } else {
    for (CallNode* existing : task_roots_) {
      if (existing->region == region && existing->parameter == parameter) {
        root = existing;
        break;
      }
    }
  }
  if (root == nullptr) {
    root = pool_.allocate(region, parameter, false, nullptr);
    task_roots_.push_back(root);
    if (merged_root_index_active_) {
      merged_root_index_.insert(root);
    } else if (options_.child_lookup_acceleration &&
               task_roots_.size() >= kChildIndexFanout) {
      for (CallNode* existing : task_roots_) {
        merged_root_index_.insert(existing);
      }
      merged_root_index_active_ = true;
    }
  }
  last_merged_root_ = root;
  return root;
}

}  // namespace taskprof
