// The paper's core contribution: call-path profiling of task-parallel
// programs (Lorenz et al., ICPP 2012, §IV).
//
// One ThreadTaskProfiler exists per thread.  It maintains
//
//  * the call tree of the thread's *implicit task*,
//  * a table of *active explicit task instances*, each with its own call
//    tree and open-frame stack (the instance tree),
//  * a *current task* pointer, and
//  * the per-construct *merged task trees* that completed instances fold
//    into ("all task instances of the same task region will finally form a
//    common sub-tree", §IV-B3).
//
// The event interface mirrors the paper's Fig. 12 pseudocode: Enter/Exit
// for regions plus TaskBegin / TaskEnd / TaskSwitch for task scheduling.
// Key behaviours reproduced:
//
//  * Stub nodes (§IV-B4): while a thread executes an explicit task, the
//    implicit task's cursor sits inside a stub node beneath its current
//    scheduling point; the stub accumulates the time spent executing that
//    task's fragments there and counts the fragments.
//  * Pause/resume (§IV-B3): "time measurements for a task must be
//    stopped/resumed when the task is suspended/resumed"; the interval
//    between suspension and resumption is subtracted from every open frame
//    of the instance.
//  * Execution-site attribution (§IV-B2): task trees live beside the main
//    tree, not under the creating node — exclusive times stay non-negative.
//    The creation-site alternative of Fig. 3 is available as an option for
//    the ablation benchmark.
//  * Instance-tree recycling (§V-B): completed instance trees are merged
//    and their nodes returned to the pool; the profiler tracks the maximum
//    number of concurrently active instances (Table II).
//  * Untied-task migration (§IV-D): instance state can be detached from one
//    profiler and adopted by another, moving the "pointer to the
//    task-specific data" with the task.  Only the simulator engine uses
//    this (single OS thread), so no synchronization is needed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "profile/calltree.hpp"
#include "profile/region.hpp"

namespace taskprof {

/// Measurement-policy switches.  Defaults reproduce the paper's design;
/// the alternatives exist for the design-ablation benchmark.
struct MeasureOptions {
  /// Place a stub node for task execution under the implicit task's
  /// scheduling point (paper §IV-B4).  Off: the implicit tree does not
  /// record where task execution happened.
  bool stub_nodes = true;

  /// Subtract suspended intervals from a task's open frames (§IV-B3).
  /// Off: a suspended task's frames keep accumulating wall time, so a
  /// task's statistics include time spent executing *other* tasks.
  bool pause_on_suspend = true;

  /// Fig. 3 ablation: attach completed task trees beneath the node that
  /// *created* the task instead of beside the main tree.  Produces
  /// negative exclusive creation times; only meaningful single-threaded
  /// (cross-thread creations fall back to execution-site placement).
  bool creation_site_attribution = false;

  /// Maximum call-tree depth per tree (0 = unlimited).  Enter events
  /// below the limit are *folded* into the node at the limit: their time
  /// stays attributed there and fold_count counts them, but no nodes are
  /// created — the paper's guard against profiles that "explode or the
  /// tree depth limits might kick in" (§IV-B3).
  std::size_t max_tree_depth = 0;

  /// Hot-path switches.  Both default on and are profile-identical to
  /// the general paths (tests/test_event_hotpath.cpp proves it); the off
  /// positions exist so tests and bench_event_hotpath can A/B the
  /// accelerated engine against the plain one.
  ///
  /// child_lookup_acceleration: hot_child last-hit cache plus the
  /// promoted open-addressed child index on high-fan-out nodes (see
  /// profile/calltree.hpp), and the merged-task-root index.
  bool child_lookup_acceleration = true;
  /// leaf_fast_path: materialize an instance's call tree lazily (on its
  /// first region enter) and fold leaf instances — which never needed a
  /// tree at all — straight into the merged per-construct node on
  /// task_end (one add, no tree walk, no node-pool traffic).  The
  /// dominant case for non-cut-off BOTS recursion.
  bool leaf_fast_path = true;

  /// Period (ns) between crash-safe snapshot flushes (src/snapshot).
  /// Non-zero arms the capture handshake on every profiler: event
  /// methods then pay two sequentially-consistent counter bumps so a
  /// background flusher can pause the profiler at an event boundary and
  /// copy its trees (ThreadTaskProfiler::capture).  0 (the default)
  /// disarms it completely — events pay one predictable branch, which
  /// keeps the bench_event_hotpath speedup gate honest.
  Ticks snapshot_every = 0;
};

/// State of one active explicit task instance (one row of the paper's
/// "table of explicit tasks", Figs. 6-11).
class TaskInstanceState {
 public:
  /// One open region frame of the instance's call stack.
  struct Frame {
    CallNode* node = nullptr;
    Ticks enter_time = 0;
    Ticks suspended_at_enter = 0;  ///< instance suspended_total at enter
  };

  TaskInstanceId id = 0;
  RegionHandle task_region = kInvalidRegion;
  std::int64_t parameter = kNoParameter;
  NodePool* home_pool = nullptr;  ///< pool the tree nodes came from
  ThreadId home_thread = 0;       ///< thread that started execution
  CallNode* root = nullptr;       ///< instance call tree (root = task region)
  std::vector<Frame> stack;       ///< open frames, root at index 0
  Ticks suspended_total = 0;      ///< accumulated suspension time
  Ticks suspend_start = 0;        ///< valid while suspended
  bool suspended = false;
  std::size_t folded = 0;         ///< open enters beyond max_tree_depth
  CallNode* creation_node = nullptr;  ///< only for creation-site ablation

  /// Reset for reuse through the instance free list.  Field-by-field
  /// rather than `*this = {}` so the open-frame stack keeps its vector
  /// capacity: a recycled instance would otherwise pay one heap
  /// allocation on its first frame push, on every task_begin.
  void reset() {
    id = 0;
    task_region = kInvalidRegion;
    parameter = kNoParameter;
    home_pool = nullptr;
    home_thread = 0;
    root = nullptr;
    stack.clear();
    suspended_total = 0;
    suspend_start = 0;
    suspended = false;
    folded = 0;
    creation_node = nullptr;
  }
};

/// Read-only view of one thread's finished profile.
struct ThreadProfileView {
  ThreadId thread = 0;
  const CallNode* implicit_root = nullptr;       ///< main call tree
  std::vector<const CallNode*> task_roots;       ///< merged per-construct trees
  std::size_t max_concurrent_instances = 0;      ///< Table II metric
  std::uint64_t task_switches = 0;               ///< total TaskSwitch events
  std::uint64_t folded_events = 0;  ///< enters folded by max_tree_depth
};

/// Per-thread task-aware call-path profiler.
///
/// Not thread-safe: each thread drives its own profiler.  The only
/// cross-thread operation is detach/adopt of instance state for untied
/// migration, which the caller must serialize (the simulator runs on one
/// OS thread, the real engine never migrates).
class ThreadTaskProfiler {
 public:
  /// `clock` must outlive the profiler.  `implicit_region` names the root
  /// of the thread's main tree.
  ThreadTaskProfiler(ThreadId thread, const Clock& clock,
                     RegionHandle implicit_region,
                     MeasureOptions options = {});
  ~ThreadTaskProfiler();

  ThreadTaskProfiler(const ThreadTaskProfiler&) = delete;
  ThreadTaskProfiler& operator=(const ThreadTaskProfiler&) = delete;

  // --- Region events (attributed to the current task) -------------------

  /// Enter a region.  `parameter` distinguishes per-value sub-trees
  /// (paper Table IV); leave as kNoParameter otherwise.
  void enter(RegionHandle region, std::int64_t parameter = kNoParameter);

  /// Exit the innermost open region, which must match `region`.
  void exit(RegionHandle region);

  // --- Task events (paper Fig. 12) ---------------------------------------

  /// A new explicit task instance starts executing on this thread.
  /// Performs TaskSwitch(instance) then Enter(task_region), per Fig. 12.
  void task_begin(RegionHandle task_region, TaskInstanceId id,
                  std::int64_t parameter = kNoParameter);

  /// The current task instance (which must be `id`) completes: Exit,
  /// TaskSwitch(implicit), merge of the instance tree, recycling.
  void task_end(TaskInstanceId id);

  /// Switch to `id` (an active instance, or kImplicitTaskId for the
  /// implicit task).  No-op when already current.
  void task_switch(TaskInstanceId id);

  /// Record the creation site of instance `id` (used only by the
  /// creation-site ablation; called at task-creation time on the creating
  /// thread).
  void note_task_created(TaskInstanceId id);

  // --- Untied-task migration (paper §IV-D) -------------------------------

  /// Remove a *suspended* instance from this profiler's table so another
  /// profiler can adopt it.  The instance tree stays in this thread's
  /// pool; it is released back here when the adopting profiler completes
  /// the task (single-OS-thread engines only).
  std::unique_ptr<TaskInstanceState> detach_instance(TaskInstanceId id);

  /// Adopt a migrated instance (it stays suspended until task_switch).
  void adopt_instance(std::unique_ptr<TaskInstanceState> state);

  // --- Crash-safe capture (src/snapshot) ----------------------------------

  /// A self-consistent mid-run copy of this profiler's trees, owned by
  /// the pool passed to capture().
  struct CaptureView {
    ThreadId thread = 0;
    CallNode* implicit_root = nullptr;
    std::vector<CallNode*> task_roots;
    std::size_t max_concurrent_instances = 0;
    std::uint64_t task_switches = 0;
    std::uint64_t folded_events = 0;
  };

  /// Copy the implicit tree and the merged per-construct trees into
  /// `into` without stopping the run for longer than one event boundary.
  /// Protocol (DESIGN.md "crash-safe snapshots"): set the pause flag,
  /// wait for the event sequence number to be even (no event body open),
  /// copy, clear the flag; an event that starts meanwhile observes the
  /// flag and spins at its boundary.  Open implicit frames are closed in
  /// the *copy* at the profiler's last event timestamp, so the copy
  /// satisfies the per-node fragment invariants; in-flight task
  /// instances are not merged (the caller marks the aggregate
  /// partial_capture).  Returns false — capturing nothing — when the
  /// handshake is disarmed (options.snapshot_every == 0) or the worker
  /// failed to quiesce within the timeout.  Must be called from a thread
  /// that does not drive this profiler's events.
  [[nodiscard]] bool capture(NodePool& into, CaptureView& out) const;

  // --- Results ------------------------------------------------------------

  /// Close the remaining open implicit frames (normally just the implicit
  /// root) with the current time.  Call once, after all parallel work is
  /// done; required before the implicit root's inclusive time is valid.
  void finalize();

  [[nodiscard]] ThreadProfileView view() const;
  [[nodiscard]] const CallNode* implicit_root() const noexcept {
    return implicit_root_;
  }
  [[nodiscard]] TaskInstanceId current_task() const noexcept;
  [[nodiscard]] std::size_t active_instances() const noexcept {
    return instances_.size();
  }
  [[nodiscard]] std::size_t max_concurrent_instances() const noexcept {
    return max_active_;
  }
  /// Reset the concurrency high-water mark (paper records it per parallel
  /// region).
  void reset_max_concurrent() noexcept { max_active_ = instances_.size(); }

  /// Rebind the time source (engines may hand out a fresh per-worker
  /// clock for every parallel region).  The new clock must not read
  /// earlier than the previous one.
  void set_clock(const Clock& clock) noexcept { clock_ = &clock; }

  [[nodiscard]] NodePool& pool() noexcept { return pool_; }
  [[nodiscard]] const NodePool& pool() const noexcept { return pool_; }
  [[nodiscard]] const MeasureOptions& options() const noexcept {
    return options_;
  }

 private:
  struct ImplicitFrame {
    CallNode* node = nullptr;
    Ticks enter_time = 0;
  };

  void enter_stub(const TaskInstanceState& instance, Ticks now);
  void exit_stub(Ticks now);
  /// Fig. 12 TaskSwitch: suspend the current explicit task (if any), make
  /// `target` current (nullptr = implicit task), resume its measurement.
  void switch_to(TaskInstanceState* target, Ticks now);
  /// `leaf_duration` is the instance's measured lifetime, used when the
  /// instance tree was never materialized (lazy leaf fast path).
  void merge_and_recycle(std::unique_ptr<TaskInstanceState> instance,
                         Ticks leaf_duration);
  TaskInstanceState* find_instance(TaskInstanceId id) noexcept;
  std::unique_ptr<TaskInstanceState> take_instance(TaskInstanceId id);
  CallNode* merged_root_for(RegionHandle region, std::int64_t parameter);

  ThreadId thread_;
  const Clock* clock_;
  MeasureOptions options_;

  NodePool pool_;
  CallNode* implicit_root_;
  std::vector<ImplicitFrame> implicit_stack_;

  // Active instances.  Linear vector: the paper measured at most 20
  // concurrent instances per thread (Table II), so O(n) lookup is cheap
  // and avoids hashing on the hot path.  Untied/adopted instances can
  // accumulate far beyond that, so lookups keep a last-hit index (tasks
  // overwhelmingly re-address the instance they just touched) and
  // removal is swap-and-pop instead of an order-preserving erase.
  std::vector<std::unique_ptr<TaskInstanceState>> instances_;
  std::size_t last_hit_ = 0;  ///< index of the most recently found instance
  std::vector<std::unique_ptr<TaskInstanceState>> instance_freelist_;
  TaskInstanceState* current_ = nullptr;  // nullptr = implicit task

  // Merged per-construct trees, beside the main tree (§IV-B3).  Lookup
  // on task_end keeps a last-hit pointer (completions of one construct
  // come in runs) and promotes to an open-addressed index once the root
  // count crosses kChildIndexFanout — parameter profiling (per-depth
  // nqueens) produces one root per parameter value, and an O(roots) scan
  // per completed instance dominated those runs.
  std::vector<CallNode*> task_roots_;
  CallNode* last_merged_root_ = nullptr;
  ChildIndex merged_root_index_;
  bool merged_root_index_active_ = false;

  // Creation-site ablation bookkeeping.  Lazily allocated: the default
  // configuration never touches (or even constructs) the map.
  std::unique_ptr<std::unordered_map<TaskInstanceId, CallNode*>>
      creation_sites_;

  std::size_t max_active_ = 0;
  std::uint64_t task_switches_ = 0;
  std::size_t implicit_folded_ = 0;
  std::uint64_t total_folds_ = 0;

  // --- Crash-safe capture coordination (see capture()) --------------------
  // Armed only when options_.snapshot_every > 0; disarmed, every event
  // pays a single predictable branch and never touches the atomics.
  // event_seq_ is odd while an event body runs (EventScope, .cpp);
  // capture_pause_ asks workers to hold at their next event boundary.
  class EventScope;
  bool capture_enabled_ = false;
  mutable std::atomic<bool> capture_pause_{false};
  mutable std::atomic<std::uint64_t> event_seq_{0};
  /// Timestamp of the most recent event, used to close open frames in a
  /// captured copy — the engine's clock may live on a worker's stack and
  /// must not be dereferenced from the flusher thread.
  Ticks last_event_ticks_ = 0;
};

}  // namespace taskprof
