// Cross-thread aggregation of per-thread profiles.
//
// Each thread builds its own trees (lock-free measurement, paper §IV-A);
// for reporting, the per-thread trees are merged into one system view:
// implicit-task trees merge node-by-node (identical region identity), and
// the per-construct task trees of all threads merge per construct.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "measure/task_profiler.hpp"
#include "profile/calltree.hpp"

namespace taskprof {

/// Whole-program profile, merged over all threads.  Owns its node pool;
/// movable, not copyable.
struct AggregateProfile {
  NodePool pool;
  CallNode* implicit_root = nullptr;     ///< merged main tree (sums over threads)
  std::vector<CallNode*> task_roots;     ///< merged per-construct task trees
  std::size_t thread_count = 0;
  std::uint64_t total_task_switches = 0;
  std::uint64_t total_folded_events = 0;  ///< enters folded by depth limits
  std::size_t max_concurrent_any_thread = 0;  ///< Table II value
  std::vector<std::size_t> max_concurrent_per_thread;

  /// True when this profile is a mid-run crash-safe capture
  /// (Instrumentor::capture_snapshot / the snapshot flusher): in-flight
  /// task instances are absent from the merged task trees and open
  /// frames were closed at the capture instant, so the cross-tree
  /// conservation and engine/telemetry cross-checks do not hold —
  /// check_profile relaxes exactly those, and the text report prints a
  /// partial-capture banner.  Survives serialization (src/snapshot).
  bool partial_capture = false;

  AggregateProfile() = default;
  AggregateProfile(AggregateProfile&&) = default;
  AggregateProfile& operator=(AggregateProfile&&) = default;
  AggregateProfile(const AggregateProfile&) = delete;
  AggregateProfile& operator=(const AggregateProfile&) = delete;

  /// Find the merged task tree for a construct (kInvalidRegion -> nullptr).
  [[nodiscard]] const CallNode* task_root(RegionHandle region) const noexcept;
};

/// Merge the given per-thread views.  Views must stay valid for the call.
[[nodiscard]] AggregateProfile aggregate_profiles(
    std::span<const ThreadProfileView> views);

}  // namespace taskprof
