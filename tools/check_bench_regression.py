#!/usr/bin/env python3
"""Gate BENCH_event_hotpath.json against the committed reference.

The trajectory bench records every shape twice (mode=baseline, the plain
engine, and mode=fastpath, the accelerated one).  Raw events/sec numbers
are machine-dependent, so CI runs on shared runners cannot gate on them
directly.  The per-shape speedup fastpath/baseline, however, is a
same-binary, same-machine A/B: if a change erodes the fast path, the
ratio drops on any machine.  This script fails when a candidate run's
speedup falls below --min-ratio (default 0.85, i.e. a >15% regression)
of the committed speedup for any shape.

With --absolute, the fastpath events/sec themselves are compared too --
only meaningful when the candidate was produced on the same machine as
the committed reference (e.g. a local before/after check).

Usage:
  python3 tools/check_bench_regression.py \
      --committed BENCH_event_hotpath.json \
      --candidate build/BENCH_event_hotpath.json
"""

import argparse
import json
import sys


def load_speedups(path):
    """Return {shape: (baseline_eps, fastpath_eps)} from a bench JSON."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "event_hotpath":
        raise SystemExit(f"{path}: not an event_hotpath bench file")
    shapes = {}
    for entry in doc.get("results", []):
        shape = entry["shape"]
        eps = float(entry["events_per_sec"])
        if eps <= 0:
            raise SystemExit(f"{path}: non-positive events/sec for {shape}")
        base, fast = shapes.get(shape, (None, None))
        if entry["mode"] == "baseline":
            base = eps
        elif entry["mode"] == "fastpath":
            fast = eps
        else:
            raise SystemExit(f"{path}: unknown mode {entry['mode']!r}")
        shapes[shape] = (base, fast)
    for shape, (base, fast) in shapes.items():
        if base is None or fast is None:
            raise SystemExit(f"{path}: shape {shape} missing a mode entry")
    return shapes


def compare(committed, candidate, min_ratio, absolute=False, quiet=False):
    """Return the list of gate failures between two load_speedups() maps."""
    failures = []
    if not quiet:
        print(f"{'shape':<22} {'committed':>10} {'candidate':>10} "
              f"{'ratio':>7}")
    for shape, (ref_base, ref_fast) in sorted(committed.items()):
        if shape not in candidate:
            failures.append(f"{shape}: missing from candidate run")
            continue
        cand_base, cand_fast = candidate[shape]
        ref_speedup = ref_fast / ref_base
        cand_speedup = cand_fast / cand_base
        ratio = cand_speedup / ref_speedup
        flag = ""
        if ratio < min_ratio:
            failures.append(
                f"{shape}: speedup {cand_speedup:.2f}x is below "
                f"{min_ratio:.2f}x of committed {ref_speedup:.2f}x")
            flag = "  << FAIL"
        if not quiet:
            print(f"{shape:<22} {ref_speedup:>9.2f}x {cand_speedup:>9.2f}x "
                  f"{ratio:>6.2f}{flag}")
        if absolute and cand_fast < min_ratio * ref_fast:
            failures.append(
                f"{shape}: fastpath {cand_fast:.3e} events/sec is below "
                f"{min_ratio:.2f}x of committed {ref_fast:.3e}")

    extra = sorted(set(candidate) - set(committed))
    if extra and not quiet:
        print(f"note: candidate has uncommitted shapes: {', '.join(extra)}")
    return failures


def self_test():
    """Exercise the loader and the gate on synthetic data; 0 on success."""
    import os
    import tempfile

    ref = {"fib": (1.0e6, 3.0e6), "nqueens": (2.0e6, 4.0e6)}

    # Identical run: clean pass.
    assert compare(ref, dict(ref), 0.85, quiet=True) == []
    # Small jitter above the floor: still a pass.
    ok = {"fib": (1.0e6, 2.8e6), "nqueens": (2.1e6, 4.0e6)}
    assert compare(ref, ok, 0.85, quiet=True) == []
    # Eroded fast path: caught.
    slow = {"fib": (1.0e6, 1.5e6), "nqueens": (2.0e6, 4.0e6)}
    fails = compare(ref, slow, 0.85, quiet=True)
    assert len(fails) == 1 and fails[0].startswith("fib:"), fails
    # Missing shape: caught.
    fails = compare(ref, {"fib": ref["fib"]}, 0.85, quiet=True)
    assert fails == ["nqueens: missing from candidate run"], fails
    # Absolute mode: same ratio but slower hardware numbers are caught.
    halved = {s: (b / 2, f / 2) for s, (b, f) in ref.items()}
    assert compare(ref, halved, 0.85, quiet=True) == []
    fails = compare(ref, halved, 0.85, absolute=True, quiet=True)
    assert len(fails) == 2, fails

    # load_speedups round trip through a real file, plus its rejects.
    doc = {"bench": "event_hotpath", "results": [
        {"shape": "fib", "mode": "baseline", "events_per_sec": 1.0e6},
        {"shape": "fib", "mode": "fastpath", "events_per_sec": 3.0e6},
    ]}
    fd, path = tempfile.mkstemp(suffix=".json")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(doc, f)
        assert load_speedups(path) == {"fib": (1.0e6, 3.0e6)}
        bad = dict(doc, bench="other")
        with open(path, "w") as f:
            json.dump(bad, f)
        try:
            load_speedups(path)
            raise AssertionError("wrong bench id accepted")
        except SystemExit:
            pass
        missing = dict(doc, results=doc["results"][:1])
        with open(path, "w") as f:
            json.dump(missing, f)
        try:
            load_speedups(path)
            raise AssertionError("missing mode accepted")
        except SystemExit:
            pass
    finally:
        os.remove(path)

    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--committed",
                        help="reference BENCH_event_hotpath.json (committed)")
    parser.add_argument("--candidate",
                        help="freshly produced BENCH_event_hotpath.json")
    parser.add_argument("--min-ratio", type=float, default=0.85,
                        help="minimum candidate/committed speedup ratio "
                             "before failing (default: 0.85)")
    parser.add_argument("--absolute", action="store_true",
                        help="also gate fastpath events/sec (same-machine "
                             "runs only)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks on synthetic data "
                             "and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.committed or not args.candidate:
        parser.error("--committed and --candidate are required "
                     "(or use --self-test)")

    committed = load_speedups(args.committed)
    candidate = load_speedups(args.candidate)
    failures = compare(committed, candidate, args.min_ratio, args.absolute)

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed "
          f"({len(committed)} shapes, min ratio {args.min_ratio:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
