#!/usr/bin/env python3
"""Gate committed bench JSONs against fresh runs (ratio-based).

Four bench families are understood, dispatched on the file's "bench" id:

event_hotpath (BENCH_event_hotpath.json)
  The trajectory bench records every shape twice (mode=baseline, the
  plain engine, and mode=fastpath, the accelerated one).  Raw events/sec
  numbers are machine-dependent, so CI runs on shared runners cannot
  gate on them directly.  The per-shape speedup fastpath/baseline,
  however, is a same-binary, same-machine A/B: if a change erodes the
  fast path, the ratio drops on any machine.  This script fails when a
  candidate run's speedup falls below --min-ratio (default 0.85, i.e. a
  >15% regression) of the committed speedup for any shape.

queue_contention (BENCH_queue_contention.json)
  Each (workload, threads) cell carries all three schedulers
  (mutex_deque, chase_lev, taskgraph).  The gated quantities are again
  same-run ratios: chase_lev/mutex_deque per cell, and — on the
  recurring "sweep" workload — taskgraph/chase_lev per cell (the
  record-and-replay speedup, DESIGN.md §12).  --taskgraph-floor
  additionally enforces an absolute floor on the file's summary
  taskgraph_speedup_sweep_4t/8t fields; CI applies it to the committed
  JSON (and to fresh runs with a generous --min-ratio, since shared
  runners are noisy).

numa_scaling (BENCH_numa_scaling.json)
  Each (kernel, machine) cell records the same BOTS task graph run under
  the flat and the hierarchical victim policy on one simulated NUMA
  machine; the gated quantity is the virtual-span ratio flat/hier.  The
  simulator is deterministic, so these ratios are exact, not noisy:
  absolute floors apply (--numa-cell-floor, default 1.0 — the
  hierarchical policy never loses a cell; --numa-wide-floor, default
  1.5 — the wide-fanout kernel's minimum win on the widest machine),
  and a --candidate run is additionally compared cell-by-cell against
  the committed reference.

ingest (BENCH_ingest.json)
  Each cell is one producer count of the {1, 8, 32} sweep through the
  in-process ingestion daemon.  Raw snapshots/sec and events/sec are
  machine-dependent trajectory numbers; the gated quantities are the
  deterministic ones: totals_exact / clean_stream must be true in every
  cell (not one visit lost or double-counted, exactly one rebase per
  producer), and delta_to_rebase_ratio — the mean delta wire cost over
  the mean rebase wire cost, a pure function of the builder, the codec
  and the difference encoder — must stay below --ingest-delta-ceiling
  (default 0.8: deltas are strictly cheaper than rebases) and, for a
  --candidate run, must match the committed value almost exactly (the
  encoders are deterministic; only JSON rounding is absorbed).

With --absolute, raw events/sec are compared too -- only meaningful
when the candidate was produced on the same machine as the committed
reference (e.g. a local before/after check).

Usage:
  python3 tools/check_bench_regression.py \
      --committed BENCH_event_hotpath.json \
      --candidate build/BENCH_event_hotpath.json
  python3 tools/check_bench_regression.py \
      --committed BENCH_queue_contention.json --taskgraph-floor 2.0
"""

import argparse
import json
import sys


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    bench = doc.get("bench")
    if bench not in ("event_hotpath", "queue_contention", "numa_scaling",
                     "ingest"):
        raise SystemExit(f"{path}: unknown bench id {bench!r}")
    return doc


# ----------------------------------------------------------------------
# event_hotpath
# ----------------------------------------------------------------------

def load_speedups(path, doc=None):
    """Return {shape: (baseline_eps, fastpath_eps)} from a bench JSON."""
    doc = doc if doc is not None else load_doc(path)
    if doc.get("bench") != "event_hotpath":
        raise SystemExit(f"{path}: not an event_hotpath bench file")
    shapes = {}
    for entry in doc.get("results", []):
        shape = entry["shape"]
        eps = float(entry["events_per_sec"])
        if eps <= 0:
            raise SystemExit(f"{path}: non-positive events/sec for {shape}")
        base, fast = shapes.get(shape, (None, None))
        if entry["mode"] == "baseline":
            base = eps
        elif entry["mode"] == "fastpath":
            fast = eps
        else:
            raise SystemExit(f"{path}: unknown mode {entry['mode']!r}")
        shapes[shape] = (base, fast)
    for shape, (base, fast) in shapes.items():
        if base is None or fast is None:
            raise SystemExit(f"{path}: shape {shape} missing a mode entry")
    return shapes


def compare(committed, candidate, min_ratio, absolute=False, quiet=False):
    """Return the list of gate failures between two load_speedups() maps."""
    failures = []
    if not quiet:
        print(f"{'shape':<22} {'committed':>10} {'candidate':>10} "
              f"{'ratio':>7}")
    for shape, (ref_base, ref_fast) in sorted(committed.items()):
        if shape not in candidate:
            failures.append(f"{shape}: missing from candidate run")
            continue
        cand_base, cand_fast = candidate[shape]
        ref_speedup = ref_fast / ref_base
        cand_speedup = cand_fast / cand_base
        ratio = cand_speedup / ref_speedup
        flag = ""
        if ratio < min_ratio:
            failures.append(
                f"{shape}: speedup {cand_speedup:.2f}x is below "
                f"{min_ratio:.2f}x of committed {ref_speedup:.2f}x")
            flag = "  << FAIL"
        if not quiet:
            print(f"{shape:<22} {ref_speedup:>9.2f}x {cand_speedup:>9.2f}x "
                  f"{ratio:>6.2f}{flag}")
        if absolute and cand_fast < min_ratio * ref_fast:
            failures.append(
                f"{shape}: fastpath {cand_fast:.3e} events/sec is below "
                f"{min_ratio:.2f}x of committed {ref_fast:.3e}")

    extra = sorted(set(candidate) - set(committed))
    if extra and not quiet:
        print(f"note: candidate has uncommitted shapes: {', '.join(extra)}")
    return failures


# ----------------------------------------------------------------------
# queue_contention
# ----------------------------------------------------------------------

# Per-cell ratios gated by contention_ratios(): numerator / denominator
# scheduler throughput, restricted to `workloads` (None = all).
CONTENTION_PAIRS = [
    ("chase_lev", "mutex_deque", None),
    ("taskgraph", "chase_lev", ("sweep",)),
]


def load_contention(path, doc=None):
    """Return ({(workload, threads): {scheduler: tasks/s}}, summary)."""
    doc = doc if doc is not None else load_doc(path)
    if doc.get("bench") != "queue_contention":
        raise SystemExit(f"{path}: not a queue_contention bench file")
    cells = {}
    for entry in doc.get("results", []):
        key = (entry["workload"], int(entry["threads"]))
        tps = float(entry["tasks_per_sec"])
        if tps <= 0:
            raise SystemExit(f"{path}: non-positive tasks/sec for {key}")
        cells.setdefault(key, {})[entry["scheduler"]] = tps
    if not cells:
        raise SystemExit(f"{path}: no results")
    if doc.get("task_counts_identical") is not True:
        raise SystemExit(f"{path}: task_counts_identical is not true — "
                         "the schedulers did not run the same work")
    summary = {
        k: float(doc.get(k, 0.0))
        for k in ("taskgraph_speedup_sweep_4t", "taskgraph_speedup_sweep_8t")
    }
    return cells, summary


def contention_ratios(cells, path="<cells>"):
    """Flatten cells to {label: ratio} for every gated scheduler pair."""
    ratios = {}
    for (workload, threads), by_sched in sorted(cells.items()):
        for num, den, only in CONTENTION_PAIRS:
            if only is not None and workload not in only:
                continue
            if num not in by_sched or den not in by_sched:
                raise SystemExit(
                    f"{path}: cell {workload} x{threads} is missing "
                    f"scheduler {num if num not in by_sched else den}")
            label = f"{workload} x{threads} {num}/{den}"
            ratios[label] = by_sched[num] / by_sched[den]
    return ratios


def compare_contention(committed, candidate, min_ratio, quiet=False):
    """Gate candidate per-cell scheduler ratios against committed ones."""
    failures = []
    ref = contention_ratios(committed, "committed")
    cand = contention_ratios(candidate, "candidate")
    if not quiet:
        print(f"{'cell ratio':<38} {'committed':>10} {'candidate':>10} "
              f"{'ratio':>7}")
    for label, ref_ratio in sorted(ref.items()):
        if label not in cand:
            failures.append(f"{label}: missing from candidate run")
            continue
        ratio = cand[label] / ref_ratio
        flag = ""
        if ratio < min_ratio:
            failures.append(
                f"{label}: {cand[label]:.2f}x is below {min_ratio:.2f}x "
                f"of committed {ref_ratio:.2f}x")
            flag = "  << FAIL"
        if not quiet:
            print(f"{label:<38} {ref_ratio:>9.2f}x {cand[label]:>9.2f}x "
                  f"{ratio:>6.2f}{flag}")
    return failures


def gate_taskgraph_floor(summary, floor, label, quiet=False):
    """Enforce the absolute replay-speedup floor on a summary dict."""
    failures = []
    for key, value in sorted(summary.items()):
        flag = ""
        if value < floor:
            failures.append(
                f"{label}: {key} = {value:.2f}x is below the "
                f"{floor:.2f}x replay-speedup floor")
            flag = "  << FAIL"
        if not quiet:
            print(f"{label}: {key:<28} {value:>6.2f}x "
                  f"(floor {floor:.2f}x){flag}")
    return failures


# ----------------------------------------------------------------------
# numa_scaling
# ----------------------------------------------------------------------

# The widest simulated machine of the sweep; the wide-fanout kernel must
# clear --numa-wide-floor there.
NUMA_WIDEST_MACHINE = "4x64"


def load_numa(path, doc=None):
    """Return ({(kernel, machine): ratio}, wide_fanout_kernel)."""
    doc = doc if doc is not None else load_doc(path)
    if doc.get("bench") != "numa_scaling":
        raise SystemExit(f"{path}: not a numa_scaling bench file")
    cells = {}
    for entry in doc.get("results", []):
        key = (entry["kernel"], entry["machine"])
        ratio = float(entry["ratio"])
        if ratio <= 0:
            raise SystemExit(f"{path}: non-positive ratio for {key}")
        if entry.get("counts_match") is not True:
            raise SystemExit(f"{path}: counts_match is not true for {key} — "
                             "the victim policies did not run the same work")
        cells[key] = ratio
    if not cells:
        raise SystemExit(f"{path}: no results")
    wide = doc.get("wide_fanout_kernel")
    if not any(kernel == wide for kernel, _ in cells):
        raise SystemExit(f"{path}: wide_fanout_kernel {wide!r} has no cells")
    return cells, wide


def gate_numa_floors(cells, wide_kernel, cell_floor, wide_floor, label,
                     quiet=False):
    """Absolute floors on one run's hierarchical/flat span ratios."""
    failures = []
    eps = 1e-9  # the ratios are exact (deterministic sim); eps absorbs
    # only the JSON round trip
    for (kernel, machine), ratio in sorted(cells.items()):
        floor = cell_floor
        kind = "cell"
        if kernel == wide_kernel and machine == NUMA_WIDEST_MACHINE:
            floor = max(cell_floor, wide_floor)
            kind = "wide-fanout"
        flag = ""
        if ratio + eps < floor:
            failures.append(
                f"{label}: {kernel} @ {machine} hier/flat = {ratio:.2f}x "
                f"is below the {floor:.2f}x {kind} floor")
            flag = "  << FAIL"
        if not quiet:
            print(f"{label}: {kernel:<10} {machine:<6} {ratio:>6.2f}x "
                  f"(floor {floor:.2f}x){flag}")
    return failures


def compare_numa(committed, candidate, min_ratio, quiet=False):
    """Gate candidate per-cell ratios against committed ones."""
    failures = []
    if not quiet:
        print(f"{'cell':<22} {'committed':>10} {'candidate':>10} "
              f"{'ratio':>7}")
    for key, ref_ratio in sorted(committed.items()):
        kernel, machine = key
        label = f"{kernel} @ {machine}"
        if key not in candidate:
            failures.append(f"{label}: missing from candidate run")
            continue
        ratio = candidate[key] / ref_ratio
        flag = ""
        if ratio < min_ratio:
            failures.append(
                f"{label}: {candidate[key]:.2f}x is below {min_ratio:.2f}x "
                f"of committed {ref_ratio:.2f}x")
            flag = "  << FAIL"
        if not quiet:
            print(f"{label:<22} {ref_ratio:>9.2f}x {candidate[key]:>9.2f}x "
                  f"{ratio:>6.2f}{flag}")
    return failures


# ----------------------------------------------------------------------
# ingest
# ----------------------------------------------------------------------

# JSON stores doubles with 6 significant digits; the wire-byte ratios
# are otherwise deterministic, so this is the whole tolerance.
INGEST_RATIO_TOLERANCE = 1e-3


def load_ingest(path, doc=None):
    """Return {producers: {"ratio": r, "events_per_sec": e,
    "snapshots_per_sec": s}} after validating the exactness flags."""
    doc = doc if doc is not None else load_doc(path)
    if doc.get("bench") != "ingest":
        raise SystemExit(f"{path}: not an ingest bench file")
    cells = {}
    for entry in doc.get("results", []):
        producers = int(entry["producers"])
        if entry.get("totals_exact") is not True:
            raise SystemExit(
                f"{path}: totals_exact is not true at {producers} producers "
                "— the daemon lost or double-counted mass")
        if entry.get("clean_stream") is not True:
            raise SystemExit(
                f"{path}: clean_stream is not true at {producers} producers "
                "— a producer re-rebased or was rejected mid-run")
        ratio = float(entry["delta_to_rebase_ratio"])
        eps = float(entry["events_per_sec"])
        sps = float(entry["snapshots_per_sec"])
        if ratio <= 0 or eps <= 0 or sps <= 0:
            raise SystemExit(f"{path}: non-positive measurement at "
                             f"{producers} producers")
        cells[producers] = {"ratio": ratio, "events_per_sec": eps,
                            "snapshots_per_sec": sps}
    if not cells:
        raise SystemExit(f"{path}: no results")
    if doc.get("all_totals_exact") is not True:
        raise SystemExit(f"{path}: all_totals_exact is not true")
    return cells


def gate_ingest_ceiling(cells, ceiling, label, quiet=False):
    """Absolute ceiling on every cell's delta/rebase wire-cost ratio."""
    failures = []
    for producers, cell in sorted(cells.items()):
        ratio = cell["ratio"]
        flag = ""
        if ratio > ceiling:
            failures.append(
                f"{label}: {producers} producers delta/rebase = "
                f"{ratio:.3f} exceeds the {ceiling:.2f} ceiling — deltas "
                "are no longer cheaper than rebases")
            flag = "  << FAIL"
        if not quiet:
            print(f"{label}: {producers:>3} producers d/r {ratio:>6.3f} "
                  f"(ceiling {ceiling:.2f}){flag}")
    return failures


def compare_ingest(committed, candidate, absolute=False, min_ratio=0.85,
                   quiet=False):
    """Candidate delta/rebase ratios must match the committed ones to
    within JSON rounding (they are deterministic); throughputs are gated
    only with --absolute (same-machine runs)."""
    failures = []
    if not quiet:
        print(f"{'producers':<10} {'committed':>10} {'candidate':>10} "
              f"{'drift':>9}")
    for producers, ref in sorted(committed.items()):
        if producers not in candidate:
            failures.append(f"{producers} producers: missing from candidate "
                            "run")
            continue
        cand = candidate[producers]
        drift = abs(cand["ratio"] - ref["ratio"]) / ref["ratio"]
        flag = ""
        if drift > INGEST_RATIO_TOLERANCE:
            failures.append(
                f"{producers} producers: delta/rebase {cand['ratio']:.4f} "
                f"drifted from committed {ref['ratio']:.4f} — the delta "
                "encoder changed behavior")
            flag = "  << FAIL"
        if not quiet:
            print(f"{producers:<10} {ref['ratio']:>10.4f} "
                  f"{cand['ratio']:>10.4f} {drift:>8.1e}{flag}")
        if absolute and cand["events_per_sec"] < (min_ratio *
                                                  ref["events_per_sec"]):
            failures.append(
                f"{producers} producers: {cand['events_per_sec']:.3e} "
                f"events/sec is below {min_ratio:.2f}x of committed "
                f"{ref['events_per_sec']:.3e}")
    return failures


# ----------------------------------------------------------------------


def self_test():
    """Exercise the loaders and gates on synthetic data; 0 on success."""
    import os
    import tempfile

    ref = {"fib": (1.0e6, 3.0e6), "nqueens": (2.0e6, 4.0e6)}

    # Identical run: clean pass.
    assert compare(ref, dict(ref), 0.85, quiet=True) == []
    # Small jitter above the floor: still a pass.
    ok = {"fib": (1.0e6, 2.8e6), "nqueens": (2.1e6, 4.0e6)}
    assert compare(ref, ok, 0.85, quiet=True) == []
    # Eroded fast path: caught.
    slow = {"fib": (1.0e6, 1.5e6), "nqueens": (2.0e6, 4.0e6)}
    fails = compare(ref, slow, 0.85, quiet=True)
    assert len(fails) == 1 and fails[0].startswith("fib:"), fails
    # Missing shape: caught.
    fails = compare(ref, {"fib": ref["fib"]}, 0.85, quiet=True)
    assert fails == ["nqueens: missing from candidate run"], fails
    # Absolute mode: same ratio but slower hardware numbers are caught.
    halved = {s: (b / 2, f / 2) for s, (b, f) in ref.items()}
    assert compare(ref, halved, 0.85, quiet=True) == []
    fails = compare(ref, halved, 0.85, absolute=True, quiet=True)
    assert len(fails) == 2, fails

    # load_speedups round trip through a real file, plus its rejects.
    doc = {"bench": "event_hotpath", "results": [
        {"shape": "fib", "mode": "baseline", "events_per_sec": 1.0e6},
        {"shape": "fib", "mode": "fastpath", "events_per_sec": 3.0e6},
    ]}
    fd, path = tempfile.mkstemp(suffix=".json")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(doc, f)
        assert load_speedups(path) == {"fib": (1.0e6, 3.0e6)}
        bad = dict(doc, bench="other")
        with open(path, "w") as f:
            json.dump(bad, f)
        try:
            load_doc(path)
            raise AssertionError("wrong bench id accepted")
        except SystemExit:
            pass
        missing = dict(doc, results=doc["results"][:1])
        with open(path, "w") as f:
            json.dump(missing, f)
        try:
            load_speedups(path)
            raise AssertionError("missing mode accepted")
        except SystemExit:
            pass
    finally:
        os.remove(path)

    # --- queue_contention ------------------------------------------------
    qcells = {
        ("fib", 4): {"mutex_deque": 1.0e6, "chase_lev": 1.5e6,
                     "taskgraph": 1.4e6},
        ("sweep", 4): {"mutex_deque": 0.8e6, "chase_lev": 1.0e6,
                       "taskgraph": 2.2e6},
    }
    # Identical: clean pass; ratios include taskgraph only on sweep.
    labels = set(contention_ratios(qcells))
    assert labels == {"fib x4 chase_lev/mutex_deque",
                      "sweep x4 chase_lev/mutex_deque",
                      "sweep x4 taskgraph/chase_lev"}, labels
    assert compare_contention(qcells, qcells, 0.85, quiet=True) == []
    # Eroded replay: caught.
    eroded = {k: dict(v) for k, v in qcells.items()}
    eroded[("sweep", 4)]["taskgraph"] = 1.0e6
    fails = compare_contention(qcells, eroded, 0.85, quiet=True)
    assert len(fails) == 1 and "taskgraph/chase_lev" in fails[0], fails
    # Missing cell: caught.
    fails = compare_contention(
        qcells, {("fib", 4): qcells[("fib", 4)]}, 0.85, quiet=True)
    assert len(fails) == 2, fails
    # Floor gate: 2.2x passes a 2.0 floor, 1.9x fails it.
    summary = {"taskgraph_speedup_sweep_4t": 2.2,
               "taskgraph_speedup_sweep_8t": 1.9}
    fails = gate_taskgraph_floor(summary, 2.0, "t", quiet=True)
    assert len(fails) == 1 and "sweep_8t" in fails[0], fails
    assert gate_taskgraph_floor(summary, 1.5, "t", quiet=True) == []

    # load_contention round trip, plus its rejects.
    qdoc = {"bench": "queue_contention", "task_counts_identical": True,
            "taskgraph_speedup_sweep_4t": 2.2,
            "taskgraph_speedup_sweep_8t": 2.3,
            "results": [
                {"workload": "sweep", "threads": 4, "scheduler": s,
                 "tasks_per_sec": t}
                for s, t in (("mutex_deque", 1.0e6), ("chase_lev", 1.2e6),
                             ("taskgraph", 2.5e6))]}
    fd, path = tempfile.mkstemp(suffix=".json")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(qdoc, f)
        cells, summary = load_contention(path)
        assert cells[("sweep", 4)]["taskgraph"] == 2.5e6
        assert summary["taskgraph_speedup_sweep_8t"] == 2.3
        bad = dict(qdoc, task_counts_identical=False)
        with open(path, "w") as f:
            json.dump(bad, f)
        try:
            load_contention(path)
            raise AssertionError("task-count mismatch accepted")
        except SystemExit:
            pass
    finally:
        os.remove(path)

    # --- numa_scaling ----------------------------------------------------
    ncells = {
        ("fib", "1x8"): 1.0,
        ("fib", "4x64"): 2.0,
        ("nqueens", "1x8"): 1.0,
        ("nqueens", "4x64"): 5.2,
    }
    # Floors: clean pass, including the exact-1.0 single-domain control.
    assert gate_numa_floors(ncells, "nqueens", 1.0, 1.5, "t",
                            quiet=True) == []
    # Hierarchical losing a cell: caught.
    losing = dict(ncells)
    losing[("fib", "4x64")] = 0.9
    fails = gate_numa_floors(losing, "nqueens", 1.0, 1.5, "t", quiet=True)
    assert len(fails) == 1 and "fib @ 4x64" in fails[0], fails
    # Wide-fanout kernel under its higher floor: caught.
    shallow = dict(ncells)
    shallow[("nqueens", "4x64")] = 1.2
    fails = gate_numa_floors(shallow, "nqueens", 1.0, 1.5, "t", quiet=True)
    assert len(fails) == 1 and "wide-fanout" in fails[0], fails
    # Candidate comparison: identical passes, eroded and missing caught.
    assert compare_numa(ncells, dict(ncells), 0.9, quiet=True) == []
    eroded_n = dict(ncells)
    eroded_n[("nqueens", "4x64")] = 2.0
    fails = compare_numa(ncells, eroded_n, 0.9, quiet=True)
    assert len(fails) == 1 and "nqueens @ 4x64" in fails[0], fails
    fails = compare_numa(ncells, {("fib", "1x8"): 1.0}, 0.9, quiet=True)
    assert len(fails) == 3, fails

    # load_numa round trip, plus its rejects.
    ndoc = {"bench": "numa_scaling", "wide_fanout_kernel": "nqueens",
            "results": [
                {"kernel": "nqueens", "machine": m, "ratio": r,
                 "counts_match": True}
                for m, r in (("1x8", 1.0), ("4x64", 5.2))]}
    fd, path = tempfile.mkstemp(suffix=".json")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(ndoc, f)
        cells, wide = load_numa(path)
        assert wide == "nqueens" and cells[("nqueens", "4x64")] == 5.2
        bad = {"bench": "numa_scaling", "wide_fanout_kernel": "nqueens",
               "results": [dict(ndoc["results"][0], counts_match=False)]}
        with open(path, "w") as f:
            json.dump(bad, f)
        try:
            load_numa(path)
            raise AssertionError("count mismatch accepted")
        except SystemExit:
            pass
        bad = dict(ndoc, wide_fanout_kernel="sort")
        with open(path, "w") as f:
            json.dump(bad, f)
        try:
            load_numa(path)
            raise AssertionError("absent wide-fanout kernel accepted")
        except SystemExit:
            pass
    finally:
        os.remove(path)

    # --- ingest ----------------------------------------------------------
    icells = {
        1: {"ratio": 0.66, "events_per_sec": 4.0e5,
            "snapshots_per_sec": 2.0e3},
        8: {"ratio": 0.66, "events_per_sec": 3.5e5,
            "snapshots_per_sec": 1.6e3},
        32: {"ratio": 0.661, "events_per_sec": 3.9e5,
             "snapshots_per_sec": 1.8e3},
    }
    # Ceiling: clean pass at 0.8, every cell caught at 0.5.
    assert gate_ingest_ceiling(icells, 0.8, "t", quiet=True) == []
    fails = gate_ingest_ceiling(icells, 0.5, "t", quiet=True)
    assert len(fails) == 3 and "no longer cheaper" in fails[0], fails
    # Candidate: identical passes; a drifted encoder is caught.
    assert compare_ingest(icells, dict(icells), quiet=True) == []
    drifted = {k: dict(v) for k, v in icells.items()}
    drifted[8]["ratio"] = 0.7
    fails = compare_ingest(icells, drifted, quiet=True)
    assert len(fails) == 1 and "delta encoder changed" in fails[0], fails
    # Missing cell: caught.
    fails = compare_ingest(icells, {1: icells[1]}, quiet=True)
    assert len(fails) == 2, fails
    # Absolute mode: same ratios but halved throughput is caught.
    halved_i = {k: dict(v, events_per_sec=v["events_per_sec"] / 2)
                for k, v in icells.items()}
    assert compare_ingest(icells, halved_i, quiet=True) == []
    fails = compare_ingest(icells, halved_i, absolute=True, quiet=True)
    assert len(fails) == 3 and "events/sec" in fails[0], fails

    # load_ingest round trip, plus its rejects.
    idoc = {"bench": "ingest", "all_totals_exact": True, "results": [
        {"producers": p, "delta_to_rebase_ratio": c["ratio"],
         "events_per_sec": c["events_per_sec"],
         "snapshots_per_sec": c["snapshots_per_sec"],
         "totals_exact": True, "clean_stream": True}
        for p, c in icells.items()]}
    fd, path = tempfile.mkstemp(suffix=".json")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(idoc, f)
        assert load_ingest(path) == icells
        bad = {**idoc, "results": [
            dict(idoc["results"][0], totals_exact=False)]}
        with open(path, "w") as f:
            json.dump(bad, f)
        try:
            load_ingest(path)
            raise AssertionError("lost mass accepted")
        except SystemExit:
            pass
        bad = {**idoc, "all_totals_exact": False}
        with open(path, "w") as f:
            json.dump(bad, f)
        try:
            load_ingest(path)
            raise AssertionError("all_totals_exact=false accepted")
        except SystemExit:
            pass
    finally:
        os.remove(path)

    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--committed",
                        help="committed reference bench JSON")
    parser.add_argument("--candidate",
                        help="freshly produced bench JSON (optional when "
                             "only --taskgraph-floor is being checked)")
    parser.add_argument("--min-ratio", type=float, default=0.85,
                        help="minimum candidate/committed ratio before "
                             "failing (default: 0.85)")
    parser.add_argument("--absolute", action="store_true",
                        help="also gate raw events/sec (same-machine runs "
                             "only; event_hotpath)")
    parser.add_argument("--taskgraph-floor", type=float, default=0.0,
                        help="absolute floor for the queue_contention "
                             "summary taskgraph replay speedups at >=4 "
                             "threads (0 = off)")
    parser.add_argument("--numa-cell-floor", type=float, default=1.0,
                        help="numa_scaling: minimum hierarchical/flat span "
                             "ratio for every (kernel, machine) cell "
                             "(default: 1.0 — hierarchical never loses)")
    parser.add_argument("--numa-wide-floor", type=float, default=1.5,
                        help="numa_scaling: minimum ratio for the wide-"
                             "fanout kernel on the widest machine "
                             "(default: 1.5)")
    parser.add_argument("--ingest-delta-ceiling", type=float, default=0.8,
                        help="ingest: maximum delta/rebase wire-cost ratio "
                             "per producer cell (default: 0.8 — deltas must "
                             "stay cheaper than rebases)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks on synthetic data "
                             "and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.committed:
        parser.error("--committed is required (or use --self-test)")

    committed_doc = load_doc(args.committed)
    bench = committed_doc["bench"]
    failures = []

    if bench == "event_hotpath":
        if not args.candidate:
            parser.error("event_hotpath gating needs --candidate")
        committed = load_speedups(args.committed, committed_doc)
        candidate = load_speedups(args.candidate)
        failures += compare(committed, candidate, args.min_ratio,
                            args.absolute)
    elif bench == "numa_scaling":
        committed, wide = load_numa(args.committed, committed_doc)
        failures += gate_numa_floors(committed, wide, args.numa_cell_floor,
                                     args.numa_wide_floor, "committed")
        if args.candidate:
            candidate, cand_wide = load_numa(args.candidate)
            failures += compare_numa(committed, candidate, args.min_ratio)
            failures += gate_numa_floors(
                candidate, cand_wide, args.numa_cell_floor * args.min_ratio,
                args.numa_wide_floor * args.min_ratio, "candidate")
    elif bench == "ingest":
        committed = load_ingest(args.committed, committed_doc)
        failures += gate_ingest_ceiling(committed, args.ingest_delta_ceiling,
                                        "committed")
        if args.candidate:
            candidate = load_ingest(args.candidate)
            failures += compare_ingest(committed, candidate, args.absolute,
                                       args.min_ratio)
            failures += gate_ingest_ceiling(candidate,
                                            args.ingest_delta_ceiling,
                                            "candidate")
    else:
        committed, ref_summary = load_contention(args.committed,
                                                 committed_doc)
        if args.candidate:
            candidate, cand_summary = load_contention(args.candidate)
            failures += compare_contention(committed, candidate,
                                           args.min_ratio)
        if args.taskgraph_floor > 0:
            failures += gate_taskgraph_floor(ref_summary,
                                             args.taskgraph_floor,
                                             "committed")
            if args.candidate:
                failures += gate_taskgraph_floor(cand_summary,
                                                 args.taskgraph_floor *
                                                 args.min_ratio,
                                                 "candidate")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench regression gate passed ({bench}, "
          f"min ratio {args.min_ratio:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
