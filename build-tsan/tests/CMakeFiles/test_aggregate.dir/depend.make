# Empty dependencies file for test_aggregate.
# This may be replaced when dependencies are built.
