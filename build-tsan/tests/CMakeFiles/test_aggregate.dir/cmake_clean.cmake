file(REMOVE_RECURSE
  "CMakeFiles/test_aggregate.dir/test_aggregate.cpp.o"
  "CMakeFiles/test_aggregate.dir/test_aggregate.cpp.o.d"
  "test_aggregate"
  "test_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
