file(REMOVE_RECURSE
  "CMakeFiles/test_calltree.dir/test_calltree.cpp.o"
  "CMakeFiles/test_calltree.dir/test_calltree.cpp.o.d"
  "test_calltree"
  "test_calltree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calltree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
