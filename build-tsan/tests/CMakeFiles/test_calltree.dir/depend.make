# Empty dependencies file for test_calltree.
# This may be replaced when dependencies are built.
