# Empty dependencies file for test_bots.
# This may be replaced when dependencies are built.
