file(REMOVE_RECURSE
  "CMakeFiles/test_bots.dir/test_bots.cpp.o"
  "CMakeFiles/test_bots.dir/test_bots.cpp.o.d"
  "test_bots"
  "test_bots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
