file(REMOVE_RECURSE
  "CMakeFiles/test_task_profiler.dir/test_task_profiler.cpp.o"
  "CMakeFiles/test_task_profiler.dir/test_task_profiler.cpp.o.d"
  "test_task_profiler"
  "test_task_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
