# Empty dependencies file for test_task_profiler.
# This may be replaced when dependencies are built.
