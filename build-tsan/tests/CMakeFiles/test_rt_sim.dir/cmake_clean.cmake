file(REMOVE_RECURSE
  "CMakeFiles/test_rt_sim.dir/test_rt_sim.cpp.o"
  "CMakeFiles/test_rt_sim.dir/test_rt_sim.cpp.o.d"
  "test_rt_sim"
  "test_rt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
