# Empty dependencies file for test_rt_sim.
# This may be replaced when dependencies are built.
