file(REMOVE_RECURSE
  "CMakeFiles/test_untied.dir/test_untied.cpp.o"
  "CMakeFiles/test_untied.dir/test_untied.cpp.o.d"
  "test_untied"
  "test_untied.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_untied.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
