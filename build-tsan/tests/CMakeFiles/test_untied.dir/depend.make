# Empty dependencies file for test_untied.
# This may be replaced when dependencies are built.
