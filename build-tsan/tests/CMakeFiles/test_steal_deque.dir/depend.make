# Empty dependencies file for test_steal_deque.
# This may be replaced when dependencies are built.
