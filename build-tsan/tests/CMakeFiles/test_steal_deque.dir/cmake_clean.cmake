file(REMOVE_RECURSE
  "CMakeFiles/test_steal_deque.dir/test_steal_deque.cpp.o"
  "CMakeFiles/test_steal_deque.dir/test_steal_deque.cpp.o.d"
  "test_steal_deque"
  "test_steal_deque.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steal_deque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
