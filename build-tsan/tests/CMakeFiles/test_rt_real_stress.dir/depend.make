# Empty dependencies file for test_rt_real_stress.
# This may be replaced when dependencies are built.
