file(REMOVE_RECURSE
  "CMakeFiles/test_rt_real_stress.dir/test_rt_real_stress.cpp.o"
  "CMakeFiles/test_rt_real_stress.dir/test_rt_real_stress.cpp.o.d"
  "test_rt_real_stress"
  "test_rt_real_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_real_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
