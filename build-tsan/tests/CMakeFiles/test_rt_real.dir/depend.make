# Empty dependencies file for test_rt_real.
# This may be replaced when dependencies are built.
