file(REMOVE_RECURSE
  "CMakeFiles/test_rt_real.dir/test_rt_real.cpp.o"
  "CMakeFiles/test_rt_real.dir/test_rt_real.cpp.o.d"
  "test_rt_real"
  "test_rt_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
