file(REMOVE_RECURSE
  "CMakeFiles/test_instrumentor.dir/test_instrumentor.cpp.o"
  "CMakeFiles/test_instrumentor.dir/test_instrumentor.cpp.o.d"
  "test_instrumentor"
  "test_instrumentor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instrumentor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
