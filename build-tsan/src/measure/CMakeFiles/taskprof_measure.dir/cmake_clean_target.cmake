file(REMOVE_RECURSE
  "libtaskprof_measure.a"
)
