# Empty dependencies file for taskprof_measure.
# This may be replaced when dependencies are built.
