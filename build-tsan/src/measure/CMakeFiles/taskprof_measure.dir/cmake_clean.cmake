file(REMOVE_RECURSE
  "CMakeFiles/taskprof_measure.dir/aggregate.cpp.o"
  "CMakeFiles/taskprof_measure.dir/aggregate.cpp.o.d"
  "CMakeFiles/taskprof_measure.dir/task_profiler.cpp.o"
  "CMakeFiles/taskprof_measure.dir/task_profiler.cpp.o.d"
  "libtaskprof_measure.a"
  "libtaskprof_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
