file(REMOVE_RECURSE
  "libtaskprof_rt.a"
)
