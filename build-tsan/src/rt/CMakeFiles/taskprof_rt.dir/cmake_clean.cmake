file(REMOVE_RECURSE
  "CMakeFiles/taskprof_rt.dir/real_runtime.cpp.o"
  "CMakeFiles/taskprof_rt.dir/real_runtime.cpp.o.d"
  "CMakeFiles/taskprof_rt.dir/sim_runtime.cpp.o"
  "CMakeFiles/taskprof_rt.dir/sim_runtime.cpp.o.d"
  "CMakeFiles/taskprof_rt.dir/steal_deque.cpp.o"
  "CMakeFiles/taskprof_rt.dir/steal_deque.cpp.o.d"
  "libtaskprof_rt.a"
  "libtaskprof_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
