# Empty dependencies file for taskprof_rt.
# This may be replaced when dependencies are built.
