
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/real_runtime.cpp" "src/rt/CMakeFiles/taskprof_rt.dir/real_runtime.cpp.o" "gcc" "src/rt/CMakeFiles/taskprof_rt.dir/real_runtime.cpp.o.d"
  "/root/repo/src/rt/sim_runtime.cpp" "src/rt/CMakeFiles/taskprof_rt.dir/sim_runtime.cpp.o" "gcc" "src/rt/CMakeFiles/taskprof_rt.dir/sim_runtime.cpp.o.d"
  "/root/repo/src/rt/steal_deque.cpp" "src/rt/CMakeFiles/taskprof_rt.dir/steal_deque.cpp.o" "gcc" "src/rt/CMakeFiles/taskprof_rt.dir/steal_deque.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/taskprof_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fiber/CMakeFiles/taskprof_fiber.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
