
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/analysis.cpp" "src/report/CMakeFiles/taskprof_report.dir/analysis.cpp.o" "gcc" "src/report/CMakeFiles/taskprof_report.dir/analysis.cpp.o.d"
  "/root/repo/src/report/cube_export.cpp" "src/report/CMakeFiles/taskprof_report.dir/cube_export.cpp.o" "gcc" "src/report/CMakeFiles/taskprof_report.dir/cube_export.cpp.o.d"
  "/root/repo/src/report/text_report.cpp" "src/report/CMakeFiles/taskprof_report.dir/text_report.cpp.o" "gcc" "src/report/CMakeFiles/taskprof_report.dir/text_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/measure/CMakeFiles/taskprof_measure.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/profile/CMakeFiles/taskprof_profile.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/taskprof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
