file(REMOVE_RECURSE
  "CMakeFiles/taskprof_report.dir/analysis.cpp.o"
  "CMakeFiles/taskprof_report.dir/analysis.cpp.o.d"
  "CMakeFiles/taskprof_report.dir/cube_export.cpp.o"
  "CMakeFiles/taskprof_report.dir/cube_export.cpp.o.d"
  "CMakeFiles/taskprof_report.dir/text_report.cpp.o"
  "CMakeFiles/taskprof_report.dir/text_report.cpp.o.d"
  "libtaskprof_report.a"
  "libtaskprof_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
