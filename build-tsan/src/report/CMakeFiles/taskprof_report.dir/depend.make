# Empty dependencies file for taskprof_report.
# This may be replaced when dependencies are built.
