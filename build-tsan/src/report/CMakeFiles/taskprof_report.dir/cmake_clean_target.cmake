file(REMOVE_RECURSE
  "libtaskprof_report.a"
)
