
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bots/alignment.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/alignment.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/alignment.cpp.o.d"
  "/root/repo/src/bots/fft.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/fft.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/fft.cpp.o.d"
  "/root/repo/src/bots/fib.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/fib.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/fib.cpp.o.d"
  "/root/repo/src/bots/floorplan.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/floorplan.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/floorplan.cpp.o.d"
  "/root/repo/src/bots/health.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/health.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/health.cpp.o.d"
  "/root/repo/src/bots/kernels.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/kernels.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/kernels.cpp.o.d"
  "/root/repo/src/bots/nqueens.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/nqueens.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/nqueens.cpp.o.d"
  "/root/repo/src/bots/sort.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/sort.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/sort.cpp.o.d"
  "/root/repo/src/bots/sparselu.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/sparselu.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/sparselu.cpp.o.d"
  "/root/repo/src/bots/strassen.cpp" "src/bots/CMakeFiles/taskprof_bots.dir/strassen.cpp.o" "gcc" "src/bots/CMakeFiles/taskprof_bots.dir/strassen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/rt/CMakeFiles/taskprof_rt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/profile/CMakeFiles/taskprof_profile.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fiber/CMakeFiles/taskprof_fiber.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/taskprof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
