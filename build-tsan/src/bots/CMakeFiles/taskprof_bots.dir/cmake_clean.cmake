file(REMOVE_RECURSE
  "CMakeFiles/taskprof_bots.dir/alignment.cpp.o"
  "CMakeFiles/taskprof_bots.dir/alignment.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/fft.cpp.o"
  "CMakeFiles/taskprof_bots.dir/fft.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/fib.cpp.o"
  "CMakeFiles/taskprof_bots.dir/fib.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/floorplan.cpp.o"
  "CMakeFiles/taskprof_bots.dir/floorplan.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/health.cpp.o"
  "CMakeFiles/taskprof_bots.dir/health.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/kernels.cpp.o"
  "CMakeFiles/taskprof_bots.dir/kernels.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/nqueens.cpp.o"
  "CMakeFiles/taskprof_bots.dir/nqueens.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/sort.cpp.o"
  "CMakeFiles/taskprof_bots.dir/sort.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/sparselu.cpp.o"
  "CMakeFiles/taskprof_bots.dir/sparselu.cpp.o.d"
  "CMakeFiles/taskprof_bots.dir/strassen.cpp.o"
  "CMakeFiles/taskprof_bots.dir/strassen.cpp.o.d"
  "libtaskprof_bots.a"
  "libtaskprof_bots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_bots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
