# Empty dependencies file for taskprof_bots.
# This may be replaced when dependencies are built.
