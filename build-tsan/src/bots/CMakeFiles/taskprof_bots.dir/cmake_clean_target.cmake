file(REMOVE_RECURSE
  "libtaskprof_bots.a"
)
