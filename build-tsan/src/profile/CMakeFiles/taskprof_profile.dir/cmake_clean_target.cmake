file(REMOVE_RECURSE
  "libtaskprof_profile.a"
)
