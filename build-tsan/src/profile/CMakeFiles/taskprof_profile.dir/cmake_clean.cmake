file(REMOVE_RECURSE
  "CMakeFiles/taskprof_profile.dir/calltree.cpp.o"
  "CMakeFiles/taskprof_profile.dir/calltree.cpp.o.d"
  "CMakeFiles/taskprof_profile.dir/region.cpp.o"
  "CMakeFiles/taskprof_profile.dir/region.cpp.o.d"
  "libtaskprof_profile.a"
  "libtaskprof_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
