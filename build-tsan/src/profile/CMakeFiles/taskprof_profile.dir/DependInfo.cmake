
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/calltree.cpp" "src/profile/CMakeFiles/taskprof_profile.dir/calltree.cpp.o" "gcc" "src/profile/CMakeFiles/taskprof_profile.dir/calltree.cpp.o.d"
  "/root/repo/src/profile/region.cpp" "src/profile/CMakeFiles/taskprof_profile.dir/region.cpp.o" "gcc" "src/profile/CMakeFiles/taskprof_profile.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/taskprof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
