# Empty dependencies file for taskprof_profile.
# This may be replaced when dependencies are built.
