file(REMOVE_RECURSE
  "CMakeFiles/taskprof_fiber.dir/fiber.cpp.o"
  "CMakeFiles/taskprof_fiber.dir/fiber.cpp.o.d"
  "libtaskprof_fiber.a"
  "libtaskprof_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
