file(REMOVE_RECURSE
  "libtaskprof_fiber.a"
)
