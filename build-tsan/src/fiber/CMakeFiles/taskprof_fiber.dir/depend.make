# Empty dependencies file for taskprof_fiber.
# This may be replaced when dependencies are built.
