# Empty dependencies file for taskprof_trace.
# This may be replaced when dependencies are built.
