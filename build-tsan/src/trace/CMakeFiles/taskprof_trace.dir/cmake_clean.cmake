file(REMOVE_RECURSE
  "CMakeFiles/taskprof_trace.dir/analysis.cpp.o"
  "CMakeFiles/taskprof_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/taskprof_trace.dir/file.cpp.o"
  "CMakeFiles/taskprof_trace.dir/file.cpp.o.d"
  "CMakeFiles/taskprof_trace.dir/recorder.cpp.o"
  "CMakeFiles/taskprof_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/taskprof_trace.dir/sampling.cpp.o"
  "CMakeFiles/taskprof_trace.dir/sampling.cpp.o.d"
  "CMakeFiles/taskprof_trace.dir/trace.cpp.o"
  "CMakeFiles/taskprof_trace.dir/trace.cpp.o.d"
  "libtaskprof_trace.a"
  "libtaskprof_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
