file(REMOVE_RECURSE
  "libtaskprof_trace.a"
)
