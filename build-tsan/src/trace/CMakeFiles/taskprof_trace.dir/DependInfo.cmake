
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/taskprof_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/taskprof_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/file.cpp" "src/trace/CMakeFiles/taskprof_trace.dir/file.cpp.o" "gcc" "src/trace/CMakeFiles/taskprof_trace.dir/file.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/trace/CMakeFiles/taskprof_trace.dir/recorder.cpp.o" "gcc" "src/trace/CMakeFiles/taskprof_trace.dir/recorder.cpp.o.d"
  "/root/repo/src/trace/sampling.cpp" "src/trace/CMakeFiles/taskprof_trace.dir/sampling.cpp.o" "gcc" "src/trace/CMakeFiles/taskprof_trace.dir/sampling.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/taskprof_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/taskprof_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/rt/CMakeFiles/taskprof_rt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/profile/CMakeFiles/taskprof_profile.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fiber/CMakeFiles/taskprof_fiber.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/taskprof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
