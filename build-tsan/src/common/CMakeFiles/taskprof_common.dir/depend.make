# Empty dependencies file for taskprof_common.
# This may be replaced when dependencies are built.
