file(REMOVE_RECURSE
  "CMakeFiles/taskprof_common.dir/format.cpp.o"
  "CMakeFiles/taskprof_common.dir/format.cpp.o.d"
  "libtaskprof_common.a"
  "libtaskprof_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
