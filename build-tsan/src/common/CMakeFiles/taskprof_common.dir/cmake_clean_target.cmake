file(REMOVE_RECURSE
  "libtaskprof_common.a"
)
