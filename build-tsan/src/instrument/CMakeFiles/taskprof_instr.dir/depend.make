# Empty dependencies file for taskprof_instr.
# This may be replaced when dependencies are built.
