file(REMOVE_RECURSE
  "CMakeFiles/taskprof_instr.dir/instrumentor.cpp.o"
  "CMakeFiles/taskprof_instr.dir/instrumentor.cpp.o.d"
  "libtaskprof_instr.a"
  "libtaskprof_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
