file(REMOVE_RECURSE
  "libtaskprof_instr.a"
)
