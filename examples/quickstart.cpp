// Quickstart: profile a small task program and read the call-path
// profile — the 60-second tour of the public API.
//
//   1. register task regions in a RegionRegistry,
//   2. attach an Instrumentor to a runtime engine,
//   3. run a parallel region that creates tasks,
//   4. render the profile (paper Fig. 5 layout) and the advisor findings.
#include <cstdio>

#include "instrument/instrumentor.hpp"
#include "report/analysis.hpp"
#include "report/text_report.hpp"
#include "rt/sim_runtime.hpp"

using namespace taskprof;

int main() {
  // A registry gives every source construct a handle.
  RegionRegistry registry;
  const RegionHandle process_chunk =
      registry.register_region("process_chunk", RegionType::kTask);
  const RegionHandle checksum_fn =
      registry.register_region("checksum", RegionType::kFunction);

  // The simulator engine: deterministic virtual time.  Swap in
  // rt::RealRuntime for wall-clock measurements — same code.
  rt::SimRuntime runtime;
  Instrumentor instrumentor(registry);
  runtime.set_hooks(&instrumentor);

  // A parallel region: one thread creates 8 tasks, everyone executes.
  runtime.parallel(4, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int chunk = 0; chunk < 8; ++chunk) {
      rt::TaskAttrs attrs;
      attrs.region = process_chunk;
      ctx.create_task(
          [&, chunk](rt::TaskContext& task_ctx) {
            task_ctx.work(50'000 + 10'000 * chunk);  // uneven chunks
            rt::ScopedRegion fn(task_ctx, checksum_fn);
            task_ctx.work(5'000);
          },
          attrs);
    }
    ctx.taskwait();
  });
  runtime.set_hooks(nullptr);
  instrumentor.finalize();

  // The profile: main tree (with '*' stub nodes showing where task
  // execution happened) plus one merged tree per task construct.
  const AggregateProfile profile = instrumentor.aggregate();
  std::fputs(render_profile(profile, registry).c_str(), stdout);

  // The granularity advisor (paper §VI workflow, automated).
  std::puts("--- advisor ---");
  std::fputs(render_findings(diagnose(profile, registry)).c_str(), stdout);
  return 0;
}
