// taskprofd: fleet-scale continuous profile ingestion daemon.
//
//   taskprofd serve  --socket=PATH [--shards=N] [--memory-budget-mb=N]
//                    [--keep-partial] [--max-seconds=N] [--quiet]
//   taskprofd report --socket=PATH [--kind=text|json|stats]
//   taskprofd export --socket=PATH --out=FILE.tpsnap
//
// serve runs the aggregation service on a Unix-domain socket until
// SIGINT/SIGTERM (or --max-seconds, for scripted runs) and prints the
// ingestion stats on exit.  report/export are one-shot query clients:
// report prints the daemon's current merged view, export writes it as
// ordinary .tpsnap bytes that `taskprof_cli load` (or another merge)
// consumes like any offline snapshot.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ingest/client.hpp"
#include "ingest/daemon.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace taskprof;

volatile std::sig_atomic_t g_stop = 0;

void stop_handler(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::printf(
      "usage:\n"
      "  %s serve  --socket=PATH [--shards=N] [--memory-budget-mb=N]\n"
      "            [--keep-partial] [--max-seconds=N] [--quiet]\n"
      "  %s report --socket=PATH [--kind=text|json|stats]\n"
      "  %s export --socket=PATH --out=FILE.tpsnap\n"
      "\n"
      "serve accepts streaming delta snapshots from profiled processes\n"
      "(taskprof_cli --ingest=PATH) and maintains the merged fleet\n"
      "profile; --memory-budget-mb bounds the live call-tree memory by\n"
      "folding cold call paths into [evicted] stubs (totals stay exact).\n"
      "report/export query a running daemon over the same socket.\n",
      argv0, argv0, argv0);
}

std::string arg_value(const std::string& arg, const char* prefix) {
  return arg.substr(std::strlen(prefix));
}

int run_serve(const std::vector<std::string>& args) {
  ingest::DaemonOptions options;
  long max_seconds = 0;
  bool quiet = false;
  for (const std::string& arg : args) {
    if (arg.rfind("--socket=", 0) == 0) {
      options.socket_path = arg_value(arg, "--socket=");
    } else if (arg.rfind("--shards=", 0) == 0) {
      options.shards = std::atoi(arg_value(arg, "--shards=").c_str());
    } else if (arg.rfind("--memory-budget-mb=", 0) == 0) {
      options.memory_budget_bytes =
          std::strtoull(arg_value(arg, "--memory-budget-mb=").c_str(),
                        nullptr, 10) *
          (1ull << 20);
    } else if (arg == "--keep-partial") {
      options.keep_partial_sessions = true;
    } else if (arg.rfind("--max-seconds=", 0) == 0) {
      max_seconds = std::atol(arg_value(arg, "--max-seconds=").c_str());
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown serve option: %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "serve requires --socket=PATH\n");
    return 2;
  }
  std::signal(SIGINT, stop_handler);
  std::signal(SIGTERM, stop_handler);
  try {
    ingest::IngestDaemon daemon(options);
    daemon.start();
    if (!quiet) {
      std::printf("taskprofd: listening on %s (%d shard(s))\n",
                  options.socket_path.c_str(), options.shards);
      std::fflush(stdout);
    }
    long elapsed_ms = 0;
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      elapsed_ms += 50;
      if (max_seconds > 0 && elapsed_ms >= max_seconds * 1000) break;
    }
    daemon.stop();
    if (!quiet) {
      const ingest::DaemonStats stats = daemon.stats();
      std::printf(
          "taskprofd: %llu session(s) (%llu clean, %llu dropped), "
          "%llu delta(s) applied, %llu visit(s) ingested, "
          "%llu subtree(s) evicted\n",
          static_cast<unsigned long long>(stats.sessions_opened),
          static_cast<unsigned long long>(stats.sessions_closed_clean),
          static_cast<unsigned long long>(stats.sessions_dropped),
          static_cast<unsigned long long>(stats.deltas_applied),
          static_cast<unsigned long long>(stats.visits_ingested),
          static_cast<unsigned long long>(stats.evicted_subtrees));
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "taskprofd: %s\n", error.what());
    return 1;
  }
}

int run_query(const std::string& mode, const std::vector<std::string>& args) {
  std::string socket_path;
  std::string kind_name = "text";
  std::string out_path;
  for (const std::string& arg : args) {
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg_value(arg, "--socket=");
    } else if (arg.rfind("--kind=", 0) == 0) {
      kind_name = arg_value(arg, "--kind=");
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg_value(arg, "--out=");
    } else {
      std::fprintf(stderr, "unknown %s option: %s\n", mode.c_str(),
                   arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "%s requires --socket=PATH\n", mode.c_str());
    return 2;
  }
  ingest::ReportKind kind = ingest::ReportKind::kText;
  if (mode == "export") {
    kind = ingest::ReportKind::kSnapshot;
    if (out_path.empty()) {
      std::fprintf(stderr, "export requires --out=FILE\n");
      return 2;
    }
  } else if (kind_name == "json") {
    kind = ingest::ReportKind::kJson;
  } else if (kind_name == "stats") {
    kind = ingest::ReportKind::kStats;
  } else if (kind_name != "text") {
    std::fprintf(stderr, "unknown --kind=%s (text|json|stats)\n",
                 kind_name.c_str());
    return 2;
  }
  try {
    const std::vector<std::uint8_t> body =
        ingest::query_report(socket_path, kind);
    if (mode == "export") {
      snapshot::atomic_write_file(out_path, body);
      std::printf("aggregate snapshot written to %s (%zu bytes)\n",
                  out_path.c_str(), body.size());
    } else {
      std::fwrite(body.data(), 1, body.size(), stdout);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "taskprofd %s: %s\n", mode.c_str(), error.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (mode == "serve") return run_serve(args);
  if (mode == "report" || mode == "export") return run_query(mode, args);
  if (mode == "--help" || mode == "-h") {
    usage(argv[0]);
    return 0;
  }
  std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
  usage(argv[0]);
  return 2;
}
