// Untied-task profiling with migration: the paper's §IV-D design, which
// its authors specified but could not exercise because no OpenMP runtime
// delivered task-switch events.  The simulator engine does: a suspended
// untied task may resume on a different virtual worker, and its profiling
// state (the instance call tree) migrates with it.
//
// The example runs the same pipeline twice — tied, then untied — and
// shows how migration shifts the per-thread stub times while the merged
// per-construct statistics stay consistent.
#include <cstdio>

#include "common/format.hpp"
#include "instrument/instrumentor.hpp"
#include "report/text_report.hpp"
#include "rt/sim_runtime.hpp"

using namespace taskprof;

namespace {

struct Outcome {
  rt::TeamStats stats;
  AggregateProfile profile;
  std::vector<Ticks> stub_per_thread;
};

Outcome run(RegionRegistry& registry, rt::TaskBinding binding) {
  const RegionHandle stage =
      registry.register_region("pipeline_stage", RegionType::kTask);
  const RegionHandle item =
      registry.register_region("pipeline_item", RegionType::kTask);

  rt::SimRuntime runtime;
  Instrumentor instrumentor(registry);
  runtime.set_hooks(&instrumentor);
  Outcome out;
  out.stats = runtime.parallel(4, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int s = 0; s < 16; ++s) {
      rt::TaskAttrs stage_attrs;
      stage_attrs.region = stage;
      stage_attrs.binding = binding;
      ctx.create_task(
          [&, s](rt::TaskContext& stage_ctx) {
            stage_ctx.work(4'000);  // pre-processing
            rt::TaskAttrs item_attrs;
            item_attrs.region = item;
            stage_ctx.create_task(
                [](rt::TaskContext& c) { c.work(40'000); }, item_attrs);
            stage_ctx.taskwait();   // untied stages may resume elsewhere
            stage_ctx.work(3'000);  // post-processing
          },
          stage_attrs);
    }
  });
  runtime.set_hooks(nullptr);
  instrumentor.finalize();
  for (const ThreadProfileView& view : instrumentor.views()) {
    Ticks stub = 0;
    for_each_node(view.implicit_root, [&](const CallNode& node, int) {
      if (node.is_stub) stub += node.inclusive;
    });
    out.stub_per_thread.push_back(stub);
  }
  out.profile = instrumentor.aggregate();
  return out;
}

void report(const char* label, const Outcome& out,
            const RegionRegistry& registry) {
  std::printf("--- %s ---\n", label);
  std::printf("span %s | tasks %llu | migrations %llu\n",
              format_ticks(out.stats.parallel_ticks).c_str(),
              static_cast<unsigned long long>(out.stats.tasks_executed),
              static_cast<unsigned long long>(out.stats.migrations));
  for (std::size_t t = 0; t < out.stub_per_thread.size(); ++t) {
    std::printf("thread %zu executed task fragments for %s\n", t,
                format_ticks(out.stub_per_thread[t]).c_str());
  }
  for (const CallNode* root : out.profile.task_roots) {
    std::printf("task '%s': %llu instances, mean %s (suspension excluded)\n",
                registry.info(root->region).name.c_str(),
                static_cast<unsigned long long>(root->visits),
                format_ticks(static_cast<Ticks>(root->visit_stats.mean()))
                    .c_str());
  }
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== untied tasks: migration-aware profiling (paper SS IV-D) ===\n");
  RegionRegistry registry;
  const Outcome tied = run(registry, rt::TaskBinding::kTied);
  report("tied stages (resume pinned to the starting thread)", tied, registry);
  const Outcome untied = run(registry, rt::TaskBinding::kUntied);
  report("untied stages (may migrate at the taskwait)", untied, registry);

  std::puts(
      "both variants merge identical per-construct statistics; the untied "
      "run reports migrations, and the migrated fragments appear in the "
      "stub nodes of the thread that actually executed them.");
  return 0;
}
