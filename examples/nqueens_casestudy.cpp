// The paper's Section VI case study, replayed end to end:
//
//  1. run nqueens without a cut-off and observe that most time inside the
//     tasks is spent *creating* child tasks,
//  2. add parameter instrumentation to break the profile down by
//     recursion depth (Table IV),
//  3. conclude — as the paper does — that cutting task creation at level 3
//     keeps enough parallelism while removing almost all overhead,
//  4. verify the conclusion by running the cut-off version.
#include <cstdio>

#include "bots/kernel.hpp"
#include "common/format.hpp"
#include "instrument/instrumentor.hpp"
#include "report/analysis.hpp"
#include "rt/sim_runtime.hpp"

using namespace taskprof;

namespace {

struct Measurement {
  bots::KernelResult result;
  AggregateProfile profile;
  std::unique_ptr<RegionRegistry> registry;
};

Measurement measure(const bots::KernelConfig& config) {
  auto kernel = bots::make_kernel("nqueens");
  auto registry = std::make_unique<RegionRegistry>();
  rt::SimRuntime runtime;
  Instrumentor instrumentor(*registry);
  runtime.set_hooks(&instrumentor);
  auto result = kernel->run(runtime, *registry, config);
  runtime.set_hooks(nullptr);
  instrumentor.finalize();
  return Measurement{std::move(result), instrumentor.aggregate(),
                     std::move(registry)};
}

}  // namespace

int main() {
  std::puts("=== nqueens granularity case study (paper Section VI) ===\n");

  bots::KernelConfig config;
  config.threads = 4;
  config.size = bots::SizeClass::kSmall;

  // Step 1: first impression from the profile of the non-cut-off run.
  std::puts("step 1: profile the version without a creation cut-off");
  const Measurement plain = measure(config);
  const auto constructs = task_construct_stats(plain.profile, *plain.registry);
  for (const auto& c : constructs) {
    const double exec_mean = c.instances == 0
                                 ? 0.0
                                 : static_cast<double>(c.exclusive_total) /
                                       static_cast<double>(c.instances);
    std::printf(
        "  task '%s': %s instances, mean exclusive execution %s,\n"
        "  mean creation time %s -> creation %s execution\n",
        c.name.c_str(), format_count(c.instances).c_str(),
        format_ticks(static_cast<Ticks>(exec_mean)).c_str(),
        format_ticks(static_cast<Ticks>(c.create_mean)).c_str(),
        c.create_mean > exec_mean ? "costs more than" : "costs less than");
  }
  std::puts("  advisor says:");
  std::fputs(render_findings(diagnose(plain.profile, *plain.registry)).c_str(),
             stdout);

  // Step 2: parameter instrumentation by recursion depth (Table IV).
  std::puts("\nstep 2: per-depth breakdown via parameter instrumentation");
  bots::KernelConfig depth_config = config;
  depth_config.depth_parameter = true;
  const Measurement by_depth = measure(depth_config);
  const RegionHandle region =
      by_depth.registry->register_region("nqueens_task", RegionType::kTask);
  const auto rows =
      parameter_breakdown(by_depth.profile, *by_depth.registry, region);
  TextTable table({"depth", "mean time", "sum", "tasks"});
  Ticks shallow_sum = 0;
  std::uint64_t shallow_tasks = 0;
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.parameter),
                   format_ticks(static_cast<Ticks>(row.inclusive_mean)),
                   format_ticks(row.inclusive_total),
                   format_count(row.instances)});
    if (row.parameter <= 3) {
      shallow_sum += row.inclusive_total;
      shallow_tasks += row.instances;
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf(
      "  depths 0-3 hold only %s of task time yet provide %s tasks —\n"
      "  plenty to balance the team, so cut task creation at level 3.\n",
      format_ticks(shallow_sum).c_str(), format_count(shallow_tasks).c_str());

  // Step 3/4: apply the cut-off and compare.
  std::puts("\nstep 3: apply the cut-off at depth 3 and re-measure");
  bots::KernelConfig cutoff_config = config;
  cutoff_config.cutoff = true;
  const Measurement cutoff = measure(cutoff_config);
  const double speedup =
      static_cast<double>(plain.result.stats.parallel_ticks) /
      static_cast<double>(cutoff.result.stats.parallel_ticks);
  std::printf(
      "  runtime %s -> %s: %.1fx faster (paper: 187 s -> 11.5 s, 16x)\n",
      format_ticks(plain.result.stats.parallel_ticks).c_str(),
      format_ticks(cutoff.result.stats.parallel_ticks).c_str(), speedup);
  std::printf("  tasks %s -> %s; both computed the same %llu solutions\n",
              format_count(plain.result.stats.tasks_executed).c_str(),
              format_count(cutoff.result.stats.tasks_executed).c_str(),
              static_cast<unsigned long long>(cutoff.result.checksum));
  std::puts("  advisor on the fixed version:");
  std::fputs(
      render_findings(diagnose(cutoff.profile, *cutoff.registry)).c_str(),
      stdout);
  return 0;
}
