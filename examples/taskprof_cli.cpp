// taskprof_cli: command-line profiling driver — run any BOTS kernel on
// either engine and emit the profile in several formats.  The "tool"
// face of the library, analogous to running a Score-P-instrumented
// binary and viewing it in CUBE.
//
//   taskprof_cli --kernel=nqueens --threads=4 --report=summary
//   taskprof_cli --kernel=fib --engine=real --size=test --report=tree
//   taskprof_cli --kernel=sort --report=csv > profile.csv
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "bots/kernel.hpp"
#include "common/format.hpp"
#include "instrument/instrumentor.hpp"
#include "report/analysis.hpp"
#include "report/cube_export.hpp"
#include "report/text_report.hpp"
#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_export.hpp"
#include "trace/file.hpp"
#include "trace/recorder.hpp"

using namespace taskprof;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --kernel=NAME [options]\n"
      "\n"
      "kernels: alignment fft fib floorplan health nqueens sort sparselu\n"
      "         strassen\n"
      "options:\n"
      "  --engine=sim|real     virtual-time simulator (default) or real\n"
      "                        threads\n"
      "  --threads=N           team size (default 4)\n"
      "  --size=test|small|medium   problem size (default small)\n"
      "  --cutoff              run the cut-off version (where available)\n"
      "  --untied              create tasks untied (simulator migrates them)\n"
      "  --depth-params        per-recursion-depth sub-trees (Table IV)\n"
      "  --seed=N              workload seed (default 42)\n"
      "  --report=summary|tree|csv|cube|findings|all   output format (default\n"
      "                        summary)\n"
      "  --trace               also record a trace; print the Section VII\n"
      "                        analyses and a timeline\n"
      "  --trace-out=FILE      record a trace and write it to FILE\n"
      "  --analyze-trace=FILE  post-mortem mode: load FILE (written by\n"
      "                        --trace-out) and print the analyses; no\n"
      "                        kernel runs\n"
      "  --telemetry           attach the scheduler-telemetry registry and\n"
      "                        print the telemetry section (steal rates,\n"
      "                        high-water marks, measured hook overhead)\n"
      "  --telemetry-json=FILE write the telemetry snapshot as JSON\n"
      "  --chrome-trace=FILE   write a chrome://tracing / Perfetto timeline\n"
      "                        (implies --trace)\n"
      "  --uninstrumented      run without measurement (timing baseline)\n",
      argv0);
}

struct CliOptions {
  std::string kernel;
  std::string engine = "sim";
  std::string report = "summary";
  bots::KernelConfig config;
  bool instrumented = true;
  bool trace = false;
  bool telemetry = false;
  std::string trace_out;
  std::string analyze_trace;
  std::string telemetry_json;
  std::string chrome_trace;
};

bool parse(int argc, char** argv, CliOptions& cli) {
  cli.config.threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--kernel=", 0) == 0) {
      cli.kernel = value_of("--kernel=");
    } else if (arg.rfind("--engine=", 0) == 0) {
      cli.engine = value_of("--engine=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.config.threads = std::stoi(value_of("--threads="));
    } else if (arg == "--size=test") {
      cli.config.size = bots::SizeClass::kTest;
    } else if (arg == "--size=small") {
      cli.config.size = bots::SizeClass::kSmall;
    } else if (arg == "--size=medium") {
      cli.config.size = bots::SizeClass::kMedium;
    } else if (arg == "--cutoff") {
      cli.config.cutoff = true;
    } else if (arg == "--untied") {
      cli.config.untied = true;
    } else if (arg == "--depth-params") {
      cli.config.depth_parameter = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.config.seed = std::stoull(value_of("--seed="));
    } else if (arg.rfind("--report=", 0) == 0) {
      cli.report = value_of("--report=");
    } else if (arg == "--uninstrumented") {
      cli.instrumented = false;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      cli.trace = true;
      cli.trace_out = value_of("--trace-out=");
    } else if (arg.rfind("--analyze-trace=", 0) == 0) {
      cli.analyze_trace = value_of("--analyze-trace=");
    } else if (arg == "--telemetry") {
      cli.telemetry = true;
    } else if (arg.rfind("--telemetry-json=", 0) == 0) {
      cli.telemetry = true;
      cli.telemetry_json = value_of("--telemetry-json=");
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      cli.trace = true;
      cli.chrome_trace = value_of("--chrome-trace=");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  if (cli.kernel.empty() && cli.analyze_trace.empty()) {
    std::fprintf(stderr, "--kernel (or --analyze-trace) is required\n");
    return false;
  }
  return true;
}

void print_summary(const bots::KernelResult& result,
                   const AggregateProfile& profile,
                   const RegionRegistry& registry) {
  std::printf("parallel span: %s | tasks executed: %s | steals: %llu | "
              "migrations: %llu\n",
              format_ticks(result.stats.parallel_ticks).c_str(),
              format_count(result.stats.tasks_executed).c_str(),
              static_cast<unsigned long long>(result.stats.steals),
              static_cast<unsigned long long>(result.stats.migrations));
  std::printf("self-check: %s (%s)\n", result.ok ? "passed" : "FAILED",
              result.check.c_str());
  TextTable table({"task construct", "instances", "mean", "min", "max",
                   "create mean", "taskwait"});
  for (const auto& c : task_construct_stats(profile, registry)) {
    std::string name = c.name;
    if (c.parameter != kNoParameter) {
      name += " [" + std::to_string(c.parameter) + "]";
    }
    table.add_row({name, format_count(c.instances),
                   format_ticks(static_cast<Ticks>(c.inclusive_mean)),
                   format_ticks(c.inclusive_min),
                   format_ticks(c.inclusive_max),
                   format_ticks(static_cast<Ticks>(c.create_mean)),
                   format_ticks(c.taskwait_total)});
  }
  std::fputs(table.str().c_str(), stdout);
  const auto summary = scheduling_point_summary(profile, registry);
  std::printf(
      "barriers: %s total, %s executing tasks, %s waiting/managing\n",
      format_ticks(summary.barrier_inclusive).c_str(),
      format_ticks(summary.barrier_stub_time).c_str(),
      format_ticks(summary.barrier_exclusive).c_str());
  std::printf("max concurrent task instances per thread: %zu\n",
              profile.max_concurrent_any_thread);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse(argc, argv, cli)) {
    usage(argv[0]);
    return 2;
  }

  // Post-mortem mode: analyze a previously recorded trace file.
  if (!cli.analyze_trace.empty()) {
    try {
      const trace::Trace loaded = trace::read_trace_file(cli.analyze_trace);
      std::printf("loaded %zu events from %zu threads\n",
                  loaded.event_count(), loaded.thread_count());
      // Region names are not stored in the trace file; analyses that need
      // them use a registry with generated names.
      RegionRegistry names;
      RegionHandle max_region = 0;
      for (const auto& event : loaded.merged()) {
        if (event.region != kInvalidRegion) {
          max_region = std::max(max_region, event.region);
        }
      }
      for (RegionHandle r = 0; r <= max_region; ++r) {
        names.register_region("region " + std::to_string(r),
                              RegionType::kTask);
      }
      const trace::TraceAnalysis analysis = trace::analyze_trace(loaded);
      std::fputs(trace::render_analysis(analysis, names).c_str(), stdout);
      std::fputs(trace::render_timeline(loaded).c_str(), stdout);
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
  }

  auto kernel = bots::make_kernel(cli.kernel);
  if (kernel == nullptr) {
    std::fprintf(stderr, "unknown kernel: %s\n", cli.kernel.c_str());
    return 2;
  }

  std::unique_ptr<rt::Runtime> runtime;
  if (cli.engine == "sim") {
    runtime = std::make_unique<rt::SimRuntime>();
  } else if (cli.engine == "real") {
    runtime = std::make_unique<rt::RealRuntime>();
  } else {
    std::fprintf(stderr, "unknown engine: %s\n", cli.engine.c_str());
    return 2;
  }

  RegionRegistry registry;
  std::unique_ptr<Instrumentor> instrumentor;
  std::unique_ptr<trace::TraceRecorder> recorder;
  std::unique_ptr<telemetry::Registry> telem;
  std::unique_ptr<telemetry::TimedHooks> timed;
  rt::FanoutHooks fanout;
  if (cli.instrumented) {
    instrumentor = std::make_unique<Instrumentor>(registry);
    fanout.add(instrumentor.get());
  }
  if (cli.trace) {
    recorder = std::make_unique<trace::TraceRecorder>();
    fanout.add(recorder.get());
  }
  if (cli.telemetry) telem = std::make_unique<telemetry::Registry>();
  if (cli.instrumented || cli.trace) {
    // With telemetry on, the timing decorator sits between the engine and
    // the measurement hooks so their cost lands in the telemetry too.
    if (telem != nullptr) {
      timed = std::make_unique<telemetry::TimedHooks>(&fanout, telem.get());
      runtime->set_hooks(timed.get());
    } else {
      runtime->set_hooks(&fanout);
    }
  }
  if (telem != nullptr) runtime->set_telemetry(telem.get());
  const bots::KernelResult result = kernel->run(*runtime, registry,
                                                cli.config);
  runtime->set_hooks(nullptr);
  runtime->set_telemetry(nullptr);

  telemetry::Snapshot telemetry_snapshot;
  if (telem != nullptr) telemetry_snapshot = telem->snapshot();

  if (cli.trace) {
    const trace::Trace recorded = recorder->take();
    std::printf("--- trace: %zu events ---\n", recorded.event_count());
    if (!cli.trace_out.empty()) {
      try {
        trace::write_trace_file(cli.trace_out, recorded);
        std::printf("trace written to %s\n", cli.trace_out.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
      }
    }
    if (!cli.chrome_trace.empty()) {
      try {
        trace::ChromeExportOptions chrome;
        chrome.registry = &registry;
        chrome.telemetry = telem != nullptr ? &telemetry_snapshot : nullptr;
        trace::write_chrome_trace(cli.chrome_trace, recorded, chrome);
        std::printf("chrome trace written to %s (open in ui.perfetto.dev)\n",
                    cli.chrome_trace.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
      }
    }
    const trace::TraceAnalysis analysis = trace::analyze_trace(recorded);
    std::fputs(trace::render_analysis(analysis, registry).c_str(), stdout);
    std::fputs(trace::render_timeline(recorded).c_str(), stdout);
  }

  if (telem != nullptr) {
    std::fputs(render_telemetry(telemetry_snapshot).c_str(), stdout);
    if (!cli.telemetry_json.empty()) {
      std::FILE* f = std::fopen(cli.telemetry_json.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", cli.telemetry_json.c_str());
        return 1;
      }
      const std::string json = telemetry::snapshot_to_json(telemetry_snapshot);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("telemetry snapshot written to %s\n",
                  cli.telemetry_json.c_str());
    }
  }

  if (!cli.instrumented) {
    std::printf("parallel span: %s | tasks executed: %s | self-check: %s\n",
                format_ticks(result.stats.parallel_ticks).c_str(),
                format_count(result.stats.tasks_executed).c_str(),
                result.ok ? "passed" : "FAILED");
    return result.ok ? 0 : 1;
  }
  instrumentor->finalize();
  const AggregateProfile profile = instrumentor->aggregate();

  if (cli.report == "summary" || cli.report == "all") {
    print_summary(result, profile, registry);
  }
  if (cli.report == "tree" || cli.report == "all") {
    std::fputs(render_profile(profile, registry).c_str(), stdout);
  }
  if (cli.report == "cube") {
    std::fputs(render_cube_xml(profile, registry).c_str(), stdout);
  }
  if (cli.report == "csv") {
    std::fputs(render_csv(profile, registry).c_str(), stdout);
  }
  if (cli.report == "findings" || cli.report == "all") {
    std::fputs(render_findings(diagnose(profile, registry)).c_str(), stdout);
  }
  return result.ok ? 0 : 1;
}
