// taskprof_cli: command-line profiling driver — run any BOTS kernel on
// either engine and emit the profile in several formats.  The "tool"
// face of the library, analogous to running a Score-P-instrumented
// binary and viewing it in CUBE.
//
//   taskprof_cli --kernel=nqueens --threads=4 --report=summary
//   taskprof_cli --kernel=fib --engine=real --size=test --report=tree
//   taskprof_cli --kernel=sort --report=csv > profile.csv
//   taskprof_cli --kernel=fib --snapshot-every=50       # crash-safe flushes
//   taskprof_cli load fib.tpsnap --report=tree --check
//   taskprof_cli merge --out=all.tpsnap a.tpsnap b.tpsnap
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "check/invariants.hpp"
#include "common/format.hpp"
#include "diagnose/diagnose.hpp"
#include "diagnose/render.hpp"
#include "instrument/instrumentor.hpp"
#include "report/analysis.hpp"
#include "report/cube_export.hpp"
#include "report/json_report.hpp"
#include "report/text_report.hpp"
#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"
#include "ingest/client.hpp"
#include "snapshot/flusher.hpp"
#include "snapshot/merge.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_export.hpp"
#include "trace/file.hpp"
#include "trace/recorder.hpp"
#include "whatif/render.hpp"
#include "whatif/validate.hpp"
#include "whatif/whatif.hpp"

using namespace taskprof;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --kernel=NAME [options]\n"
      "       %s load FILE.tpsnap [--report=tree|cube|csv] [--check]\n"
      "       %s merge --out=OUT.tpsnap FILE.tpsnap [FILE.tpsnap ...]\n"
      "       taskprof_cli diagnose --kernel=NAME [run options]\n"
      "                             [--fail-on=SEV] [--json=FILE]\n"
      "       taskprof_cli diagnose FILE.tpsnap [--trace-file=FILE.tptrc]\n"
      "       taskprof_cli diagnose --trace-file=FILE.tptrc\n"
      "       taskprof_cli whatif --kernel=NAME [run options]\n"
      "                           [--whatif PATH=N ...] [--threads-list=...]\n"
      "                           [--json=FILE]\n"
      "       taskprof_cli whatif FILE.tpsnap --trace-file=FILE.tptrc\n"
      "       taskprof_cli whatif --trace-file=FILE.tptrc\n"
      "       taskprof_cli whatif-validate [--kernels=a,b] [--threads=2,4,8]\n"
      "                           [--optimize=25,50,90] [--size=test]\n"
      "                           [--tolerance=0.15] [--json=FILE]\n"
      "\n"
      "kernels: alignment fft fib floorplan health nqueens sort sparselu\n"
      "         strassen\n"
      "options:\n",
      argv0, argv0, argv0);
  std::printf(
      "  --engine=sim|real     virtual-time simulator (default) or real\n"
      "                        threads\n"
      "  --threads=N           team size (default 4)\n"
      "  --scheduler=chase_lev|mutex_deque|taskgraph   real-engine task\n"
      "                        scheduler (default chase_lev); taskgraph\n"
      "                        records the first run's task graph and\n"
      "                        replays later runs through a static\n"
      "                        schedule (use with --repeat)\n"
      "  --repeat=N            run the kernel N times on one runtime\n"
      "                        (default 1); with --scheduler=taskgraph\n"
      "                        run 1 records and runs 2..N replay\n"
      "  --size=test|small|medium   problem size (default small)\n"
      "  --cutoff              run the cut-off version (where available)\n"
      "  --untied              create tasks untied (simulator migrates them)\n"
      "  --depth-params        per-recursion-depth sub-trees (Table IV)\n"
      "  --seed=N              workload seed (default 42)\n"
      "  --report=summary|tree|csv|cube|findings|all   output format (default\n"
      "                        summary)\n"
      "  --trace               also record a trace; print the Section VII\n"
      "                        analyses and a timeline\n"
      "  --trace-out=FILE      record a trace and write it to FILE\n"
      "  --analyze-trace=FILE  post-mortem mode: load FILE (written by\n"
      "                        --trace-out) and print the analyses; no\n"
      "                        kernel runs\n"
      "  --telemetry           attach the scheduler-telemetry registry and\n"
      "                        print the telemetry section (steal rates,\n"
      "                        high-water marks, measured hook overhead)\n"
      "  --telemetry-json=FILE write the telemetry snapshot as JSON\n"
      "  --chrome-trace=FILE   write a chrome://tracing / Perfetto timeline\n"
      "                        (implies --trace)\n"
      "  --snapshot-out=FILE   write a crash-safe .tpsnap profile snapshot\n"
      "                        (default <kernel>.tpsnap with\n"
      "                        --snapshot-every)\n"
      "  --topology=DxW[:flat] machine topology: D locality domains of W\n"
      "                        workers each (e.g. 2x4).  Steals prefer the\n"
      "                        thief's own domain and escalate to batched\n"
      "                        cross-domain steals; on the sim engine\n"
      "                        cross-domain work additionally pays the\n"
      "                        interconnect latency.  \":flat\" keeps the\n"
      "                        simulated machine but disables the\n"
      "                        hierarchical victim policy (A/B baseline)\n"
      "  --snapshot-every=MS   flush a partial snapshot every MS\n"
      "                        milliseconds during the run; the final flush\n"
      "                        replaces it with the complete profile\n"
      "  --ingest=SOCKET       stream every flush to a running taskprofd\n"
      "                        as a delta snapshot over the Unix socket\n"
      "                        (combine with --snapshot-every; without\n"
      "                        --snapshot-out no local file is written)\n"
      "  --report-json=FILE    write the profile analysis (construct stats,\n"
      "                        scheduling points, advisor findings) as JSON\n"
      "  --uninstrumented      run without measurement (timing baseline)\n"
      "\n"
      "diagnose runs the detrimental-pattern detectors (creation storm,\n"
      "serialized spawn chain, starved workers, granularity collapse,\n"
      "taskwait serialization, replay fallback) over a live run, a .tpsnap\n"
      "snapshot, and/or a recorded trace.  --fail-on=info|warning|problem\n"
      "exits 3 when a finding at or above that severity is present.\n"
      "\n"
      "whatif computes causal projections over a recorded trace: for each\n"
      "--whatif PATH=N hypothesis (\"call path PATH runs N%% faster\",\n"
      "N in (0,100]) it reports the new critical path, logical parallelism,\n"
      "and anticipated wall-clock speedup at each --threads-list count.\n"
      "Without targets it prints the ranked top-optimization-targets table\n"
      "(every path at N=50).  whatif needs a trace: a live --kernel run\n"
      "records one, or pass --trace-file; a .tpsnap alone is rejected with\n"
      "a no_trace error.  whatif-validate replays BOTS kernels on the sim\n"
      "engine with each hypothesis applied to the virtual task durations\n"
      "and gates |projected - simulated| / simulated per case (exit 3 on\n"
      "gate failure).\n");
}

struct CliOptions {
  std::string kernel;
  std::string engine = "sim";
  std::string scheduler = "chase_lev";
  std::string report = "summary";
  int repeat = 1;
  bots::KernelConfig config;
  bool instrumented = true;
  bool trace = false;
  bool telemetry = false;
  std::string trace_out;
  std::string analyze_trace;
  std::string telemetry_json;
  std::string chrome_trace;
  std::string report_json;
  std::string snapshot_out;
  std::string ingest_socket;
  std::uint64_t snapshot_every_ms = 0;
  std::string topology_spec;
};

/// Parses "--topology=DxW[:flat]" into a Topology.  The optional ":flat"
/// suffix keeps the simulated machine (domains, latencies) but selects
/// the flat victim policy — the A/B knob of bench_numa_scaling.
bool parse_topology_spec(const std::string& spec, rt::Topology& out) {
  std::string machine = spec;
  bool hierarchical = true;
  if (const auto colon = machine.rfind(":flat");
      colon != std::string::npos && colon == machine.size() - 5) {
    machine.resize(colon);
    hierarchical = false;
  }
  const auto parsed = rt::Topology::parse(machine);
  if (!parsed.has_value()) return false;
  out = *parsed;
  out.hierarchical = hierarchical;
  return true;
}

bool parse(int argc, char** argv, CliOptions& cli) {
  cli.config.threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--kernel=", 0) == 0) {
      cli.kernel = value_of("--kernel=");
    } else if (arg.rfind("--engine=", 0) == 0) {
      cli.engine = value_of("--engine=");
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      cli.scheduler = value_of("--scheduler=");
    } else if (arg.rfind("--repeat=", 0) == 0) {
      cli.repeat = std::stoi(value_of("--repeat="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.config.threads = std::stoi(value_of("--threads="));
    } else if (arg == "--size=test") {
      cli.config.size = bots::SizeClass::kTest;
    } else if (arg == "--size=small") {
      cli.config.size = bots::SizeClass::kSmall;
    } else if (arg == "--size=medium") {
      cli.config.size = bots::SizeClass::kMedium;
    } else if (arg == "--cutoff") {
      cli.config.cutoff = true;
    } else if (arg == "--untied") {
      cli.config.untied = true;
    } else if (arg == "--depth-params") {
      cli.config.depth_parameter = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      cli.config.seed = std::stoull(value_of("--seed="));
    } else if (arg.rfind("--report=", 0) == 0) {
      cli.report = value_of("--report=");
    } else if (arg == "--uninstrumented") {
      cli.instrumented = false;
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      cli.trace = true;
      cli.trace_out = value_of("--trace-out=");
    } else if (arg.rfind("--analyze-trace=", 0) == 0) {
      cli.analyze_trace = value_of("--analyze-trace=");
    } else if (arg == "--telemetry") {
      cli.telemetry = true;
    } else if (arg.rfind("--telemetry-json=", 0) == 0) {
      cli.telemetry = true;
      cli.telemetry_json = value_of("--telemetry-json=");
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      cli.trace = true;
      cli.chrome_trace = value_of("--chrome-trace=");
    } else if (arg.rfind("--report-json=", 0) == 0) {
      cli.report_json = value_of("--report-json=");
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      cli.snapshot_out = value_of("--snapshot-out=");
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      cli.snapshot_every_ms = std::stoull(value_of("--snapshot-every="));
    } else if (arg.rfind("--ingest=", 0) == 0) {
      cli.ingest_socket = value_of("--ingest=");
    } else if (arg.rfind("--topology=", 0) == 0) {
      cli.topology_spec = value_of("--topology=");
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  if (cli.kernel.empty() && cli.analyze_trace.empty()) {
    std::fprintf(stderr, "--kernel (or --analyze-trace) is required\n");
    return false;
  }
  if (cli.snapshot_every_ms > 0 && cli.snapshot_out.empty() &&
      cli.ingest_socket.empty()) {
    cli.snapshot_out = cli.kernel + ".tpsnap";
  }
  if (cli.repeat < 1) {
    std::fprintf(stderr, "--repeat must be >= 1\n");
    return false;
  }
  return true;
}

void print_summary(const bots::KernelResult& result,
                   const AggregateProfile& profile,
                   const RegionRegistry& registry) {
  std::printf("parallel span: %s | tasks executed: %s | steals: %llu | "
              "migrations: %llu\n",
              format_ticks(result.stats.parallel_ticks).c_str(),
              format_count(result.stats.tasks_executed).c_str(),
              static_cast<unsigned long long>(result.stats.steals),
              static_cast<unsigned long long>(result.stats.migrations));
  std::printf("self-check: %s (%s)\n", result.ok ? "passed" : "FAILED",
              result.check.c_str());
  TextTable table({"task construct", "instances", "mean", "min", "max",
                   "create mean", "taskwait"});
  for (const auto& c : task_construct_stats(profile, registry)) {
    std::string name = c.name;
    if (c.parameter != kNoParameter) {
      name += " [" + std::to_string(c.parameter) + "]";
    }
    table.add_row({name, format_count(c.instances),
                   format_ticks(static_cast<Ticks>(c.inclusive_mean)),
                   format_ticks(c.inclusive_min),
                   format_ticks(c.inclusive_max),
                   format_ticks(static_cast<Ticks>(c.create_mean)),
                   format_ticks(c.taskwait_total)});
  }
  std::fputs(table.str().c_str(), stdout);
  const auto summary = scheduling_point_summary(profile, registry);
  std::printf(
      "barriers: %s total, %s executing tasks, %s waiting/managing\n",
      format_ticks(summary.barrier_inclusive).c_str(),
      format_ticks(summary.barrier_stub_time).c_str(),
      format_ticks(summary.barrier_exclusive).c_str());
  std::printf("max concurrent task instances per thread: %zu\n",
              profile.max_concurrent_any_thread);
}

/// `taskprof_cli load FILE [--report=tree|cube|csv] [--check]`:
/// deserialize a .tpsnap and render it exactly like a live profile.
int cmd_load(int argc, char** argv) {
  std::string path;
  std::string report = "tree";
  bool check = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report=", 0) == 0) {
      report = arg.substr(std::strlen("--report="));
    } else if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "load takes exactly one file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: taskprof_cli load FILE.tpsnap "
                 "[--report=tree|cube|csv] [--check]\n");
    return 2;
  }
  try {
    const snapshot::SnapshotData data = snapshot::read_snapshot_file(path);
    std::fprintf(stderr,
                 "loaded %s: flush %llu of process %llu, %zu regions, "
                 "%zu threads%s%s\n",
                 path.c_str(),
                 static_cast<unsigned long long>(data.meta.flush_seq),
                 static_cast<unsigned long long>(data.meta.process_id),
                 data.registry->size(), data.profile.thread_count,
                 data.profile.partial_capture ? ", partial capture" : "",
                 data.has_telemetry ? ", telemetry" : "");
    if (check) {
      const check::InvariantReport verdict = check::check_profile(
          data.profile, *data.registry, nullptr,
          data.has_telemetry ? &data.telemetry : nullptr);
      if (!verdict.ok()) {
        std::fprintf(stderr, "check_profile FAILED:\n%s\n",
                     verdict.to_string().c_str());
        return 1;
      }
      std::fprintf(stderr, "check_profile passed (%zu nodes)\n",
                   verdict.nodes_checked);
    }
    if (report == "tree") {
      std::fputs(render_profile(data.profile, *data.registry).c_str(),
                 stdout);
    } else if (report == "cube") {
      std::fputs(render_cube_xml(data.profile, *data.registry).c_str(),
                 stdout);
    } else if (report == "csv") {
      std::fputs(render_csv(data.profile, *data.registry).c_str(), stdout);
    } else {
      std::fprintf(stderr, "unknown report: %s\n", report.c_str());
      return 2;
    }
    if (data.has_telemetry) {
      std::fputs(render_telemetry(data.telemetry).c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
}

/// `taskprof_cli merge --out=OUT a.tpsnap b.tpsnap ...`: collate
/// per-process snapshots into one (registries unified, trees merged).
int cmd_merge(int argc, char** argv) {
  std::string out;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (out.empty() || paths.empty()) {
    std::fprintf(stderr, "usage: taskprof_cli merge --out=OUT.tpsnap "
                 "FILE.tpsnap [FILE.tpsnap ...]\n");
    return 2;
  }
  try {
    const snapshot::SnapshotData merged = snapshot::merge_snapshot_files(paths);
    snapshot::write_snapshot_file(out, merged);
    std::printf("merged %zu snapshots into %s (%zu regions, %zu threads%s)\n",
                paths.size(), out.c_str(), merged.registry->size(),
                merged.profile.thread_count,
                merged.profile.partial_capture ? ", partial capture" : "");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
}

/// `taskprof_cli diagnose ...`: run the detrimental-pattern detectors.
/// Three input modes, combinable where it makes sense:
///   --kernel=NAME        live run (trace + telemetry recorded implicitly)
///   FILE.tpsnap          post-mortem profile (+ telemetry if present)
///   --trace-file=FILE    recorded trace (alone, or alongside a .tpsnap)
int cmd_diagnose(int argc, char** argv) {
  std::string kernel_name;
  std::string engine = "sim";
  std::string scheduler = "chase_lev";
  std::string snapshot_path;
  std::string trace_path;
  std::string json_out;
  std::string chrome_out;
  std::string fail_on;
  int repeat = 1;
  bots::KernelConfig config;
  config.threads = 4;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--kernel=", 0) == 0) {
      kernel_name = value_of("--kernel=");
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine = value_of("--engine=");
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      scheduler = value_of("--scheduler=");
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::stoi(value_of("--repeat="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads = std::stoi(value_of("--threads="));
    } else if (arg == "--size=test") {
      config.size = bots::SizeClass::kTest;
    } else if (arg == "--size=small") {
      config.size = bots::SizeClass::kSmall;
    } else if (arg == "--size=medium") {
      config.size = bots::SizeClass::kMedium;
    } else if (arg == "--cutoff") {
      config.cutoff = true;
    } else if (arg == "--untied") {
      config.untied = true;
    } else if (arg == "--depth-params") {
      config.depth_parameter = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(value_of("--seed="));
    } else if (arg.rfind("--trace-file=", 0) == 0) {
      trace_path = value_of("--trace-file=");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_out = value_of("--json=");
    } else if (arg.rfind("--chrome-trace=", 0) == 0) {
      chrome_out = value_of("--chrome-trace=");
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      fail_on = value_of("--fail-on=");
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else if (snapshot_path.empty()) {
      snapshot_path = arg;
    } else {
      std::fprintf(stderr, "diagnose takes at most one .tpsnap file\n");
      return 2;
    }
  }
  diag::Severity gate = diag::Severity::kProblem;
  if (!fail_on.empty() && !diag::parse_severity(fail_on, &gate)) {
    std::fprintf(stderr, "--fail-on must be info|warning|problem\n");
    return 2;
  }
  const bool live = !kernel_name.empty();
  if (!live && snapshot_path.empty() && trace_path.empty()) {
    std::fprintf(stderr, "diagnose needs --kernel=NAME, a .tpsnap file, "
                 "or --trace-file=FILE\n");
    return 2;
  }
  if (live && !snapshot_path.empty()) {
    std::fprintf(stderr, "diagnose: --kernel and a .tpsnap file are "
                 "mutually exclusive\n");
    return 2;
  }

  // Inputs must outlive run_diagnosis; declare all storage up front.
  RegionRegistry registry;
  AggregateProfile profile;
  snapshot::SnapshotData snap;
  trace::Trace recorded;
  telemetry::Snapshot telemetry_snapshot;
  diag::DiagnosisInput input;

  try {
    if (live) {
      auto kernel = bots::make_kernel(kernel_name);
      if (kernel == nullptr) {
        std::fprintf(stderr, "unknown kernel: %s\n", kernel_name.c_str());
        return 2;
      }
      std::unique_ptr<rt::Runtime> runtime;
      if (engine == "sim") {
        runtime = std::make_unique<rt::SimRuntime>();
      } else if (engine == "real") {
        rt::RealConfig real_config;
        if (scheduler == "chase_lev") {
          real_config.scheduler = rt::SchedulerKind::kChaseLev;
        } else if (scheduler == "mutex_deque") {
          real_config.scheduler = rt::SchedulerKind::kMutexDeque;
        } else if (scheduler == "taskgraph") {
          real_config.scheduler = rt::SchedulerKind::kTaskGraph;
        } else {
          std::fprintf(stderr, "unknown scheduler: %s\n", scheduler.c_str());
          return 2;
        }
        runtime = std::make_unique<rt::RealRuntime>(real_config);
      } else {
        std::fprintf(stderr, "unknown engine: %s\n", engine.c_str());
        return 2;
      }
      // A diagnose run always records everything the detectors can use:
      // profile, trace, and telemetry.
      Instrumentor instrumentor(registry, MeasureOptions{});
      trace::TraceRecorder recorder;
      telemetry::Registry telem;
      rt::FanoutHooks fanout;
      fanout.add(&instrumentor);
      fanout.add(&recorder);
      telemetry::TimedHooks timed(&fanout, &telem);
      runtime->set_hooks(&timed);
      runtime->set_telemetry(&telem);
      bots::KernelResult result;
      for (int run = 0; run < repeat; ++run) {
        result = kernel->run(*runtime, registry, config);
        if (!result.ok) break;
      }
      runtime->set_hooks(nullptr);
      runtime->set_telemetry(nullptr);
      if (!result.ok) {
        std::fprintf(stderr, "kernel self-check FAILED: %s\n",
                     result.check.c_str());
        return 1;
      }
      instrumentor.finalize();
      profile = instrumentor.aggregate();
      recorded = recorder.take();
      telemetry_snapshot = telem.snapshot();
      input.profile = &profile;
      input.registry = &registry;
      input.trace = &recorded;
      input.telemetry = &telemetry_snapshot;
    } else if (!snapshot_path.empty()) {
      snap = snapshot::read_snapshot_file(snapshot_path);
      input.profile = &snap.profile;
      input.registry = snap.registry.get();
      if (snap.has_telemetry) input.telemetry = &snap.telemetry;
      if (!trace_path.empty()) {
        recorded = trace::read_trace_file(trace_path);
        input.trace = &recorded;
      }
    } else {
      // Trace only: region names are not stored in the trace file, so
      // run against a registry of generated names (same as
      // --analyze-trace).
      recorded = trace::read_trace_file(trace_path);
      RegionHandle max_region = 0;
      for (const auto& event : recorded.merged()) {
        if (event.region != kInvalidRegion) {
          max_region = std::max(max_region, event.region);
        }
      }
      for (RegionHandle r = 0; r <= max_region; ++r) {
        registry.register_region("region " + std::to_string(r),
                                 RegionType::kTask);
      }
      input.registry = &registry;
      input.trace = &recorded;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  const diag::DiagnosisReport report = diag::run_diagnosis(input);
  {
    std::ostringstream os;
    diag::render_diagnosis_text(report, os);
    std::fputs(os.str().c_str(), stdout);
  }
  if (!json_out.empty()) {
    const std::string json = diag::render_diagnosis_json(report);
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("diagnosis JSON written to %s\n", json_out.c_str());
  }
  if (!chrome_out.empty() && input.trace != nullptr) {
    try {
      const std::vector<trace::TraceAnnotation> annotations =
          diag::diagnosis_annotations(report);
      trace::ChromeExportOptions chrome;
      chrome.registry = input.registry;
      chrome.telemetry = input.telemetry;
      chrome.annotations = &annotations;
      trace::write_chrome_trace(chrome_out, *input.trace, chrome);
      std::printf("chrome trace written to %s (diagnoses as instant "
                  "events)\n",
                  chrome_out.c_str());
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
  }
  if (!fail_on.empty() && report.count_at_least(gate) > 0) {
    std::fprintf(stderr, "diagnose: %zu finding(s) at or above %s\n",
                 report.count_at_least(gate), diag::severity_name(gate));
    return 3;
  }
  return 0;
}

/// Parse "2,4,8" into integers; returns false on any bad element.
bool parse_int_list(const std::string& text, std::vector<int>* out) {
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      out->push_back(std::stoi(item));
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out->empty();
}

bool parse_double_list(const std::string& text, std::vector<double>* out) {
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      out->push_back(std::stod(item));
    } catch (const std::exception&) {
      return false;
    }
  }
  return !out->empty();
}

int report_whatif_error(const whatif::Error& error) {
  std::fprintf(stderr, "whatif: [%s] %s\n",
               whatif::error_code_name(error.code), error.message.c_str());
  return 2;
}

/// `taskprof_cli whatif ...`: causal what-if projections over a recorded
/// trace.  Input modes mirror diagnose, but a trace is mandatory (the
/// projection runs over reconstructed task lifetimes):
///   --kernel=NAME        live run, trace recorded implicitly
///   FILE.tpsnap --trace-file=FILE   snapshot registry + recorded trace
///   --trace-file=FILE    recorded trace with generated region names
int cmd_whatif(int argc, char** argv) {
  std::string kernel_name;
  std::string engine = "sim";
  std::string snapshot_path;
  std::string trace_path;
  std::string json_out;
  std::vector<std::string> specs;
  std::vector<int> thread_counts;
  double rank_percent = 50.0;
  bots::KernelConfig config;
  config.threads = 4;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--kernel=", 0) == 0) {
      kernel_name = value_of("--kernel=");
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine = value_of("--engine=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads = std::stoi(value_of("--threads="));
    } else if (arg.rfind("--threads-list=", 0) == 0) {
      if (!parse_int_list(value_of("--threads-list="), &thread_counts)) {
        std::fprintf(stderr, "--threads-list wants e.g. 2,4,8\n");
        return 2;
      }
    } else if (arg == "--size=test") {
      config.size = bots::SizeClass::kTest;
    } else if (arg == "--size=small") {
      config.size = bots::SizeClass::kSmall;
    } else if (arg == "--size=medium") {
      config.size = bots::SizeClass::kMedium;
    } else if (arg == "--cutoff") {
      config.cutoff = true;
    } else if (arg == "--untied") {
      config.untied = true;
    } else if (arg == "--depth-params") {
      config.depth_parameter = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(value_of("--seed="));
    } else if (arg.rfind("--trace-file=", 0) == 0) {
      trace_path = value_of("--trace-file=");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_out = value_of("--json=");
    } else if (arg.rfind("--rank-percent=", 0) == 0) {
      rank_percent = std::stod(value_of("--rank-percent="));
    } else if (arg.rfind("--whatif=", 0) == 0) {
      specs.push_back(value_of("--whatif="));
    } else if (arg == "--whatif" && i + 1 < argc) {
      specs.emplace_back(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else if (snapshot_path.empty()) {
      snapshot_path = arg;
    } else {
      std::fprintf(stderr, "whatif takes at most one .tpsnap file\n");
      return 2;
    }
  }
  const bool live = !kernel_name.empty();
  if (!live && snapshot_path.empty() && trace_path.empty()) {
    std::fprintf(stderr, "whatif needs --kernel=NAME, a .tpsnap file with "
                 "--trace-file, or --trace-file=FILE\n");
    return 2;
  }
  if (live && !snapshot_path.empty()) {
    std::fprintf(stderr, "whatif: --kernel and a .tpsnap file are "
                 "mutually exclusive\n");
    return 2;
  }
  // Parse hypotheses before any (possibly slow) run so bad specs fail
  // fast with their typed error.
  std::vector<whatif::TargetSpec> targets;
  for (const std::string& spec : specs) {
    whatif::TargetSpec target;
    const whatif::Error parse_error = whatif::parse_target_spec(spec, &target);
    if (!parse_error.ok()) return report_whatif_error(parse_error);
    targets.push_back(std::move(target));
  }
  if (!(rank_percent > 0.0) || rank_percent > 100.0) {
    return report_whatif_error(
        {whatif::ErrorCode::kBadFraction,
         "--rank-percent must be in (0,100]"});
  }

  // Inputs must outlive the profile; declare all storage up front.
  RegionRegistry registry;
  snapshot::SnapshotData snap;
  trace::Trace recorded;
  const RegionRegistry* names = &registry;

  try {
    if (live) {
      auto kernel = bots::make_kernel(kernel_name);
      if (kernel == nullptr) {
        std::fprintf(stderr, "unknown kernel: %s\n", kernel_name.c_str());
        return 2;
      }
      std::unique_ptr<rt::Runtime> runtime;
      if (engine == "sim") {
        runtime = std::make_unique<rt::SimRuntime>();
      } else if (engine == "real") {
        runtime = std::make_unique<rt::RealRuntime>();
      } else {
        std::fprintf(stderr, "unknown engine: %s\n", engine.c_str());
        return 2;
      }
      Instrumentor instrumentor(registry, MeasureOptions{});
      trace::TraceRecorder recorder;
      rt::FanoutHooks fanout;
      fanout.add(&instrumentor);
      fanout.add(&recorder);
      runtime->set_hooks(&fanout);
      const bots::KernelResult result =
          kernel->run(*runtime, registry, config);
      runtime->set_hooks(nullptr);
      if (!result.ok) {
        std::fprintf(stderr, "kernel self-check FAILED: %s\n",
                     result.check.c_str());
        return 1;
      }
      instrumentor.finalize();
      recorded = recorder.take();
    } else if (!snapshot_path.empty()) {
      snap = snapshot::read_snapshot_file(snapshot_path);
      names = snap.registry.get();
      if (trace_path.empty()) {
        // The projection needs task lifetimes; a profile snapshot alone
        // cannot provide them.
        return report_whatif_error(
            {whatif::ErrorCode::kNoTrace,
             "snapshot input '" + snapshot_path +
                 "' carries no trace; record one with --trace-out and pass "
                 "--trace-file=FILE.tptrc"});
      }
      recorded = trace::read_trace_file(trace_path);
    } else {
      // Trace only: generated region names (names are not in the file).
      recorded = trace::read_trace_file(trace_path);
      RegionHandle max_region = 0;
      for (const auto& event : recorded.merged()) {
        if (event.region != kInvalidRegion) {
          max_region = std::max(max_region, event.region);
        }
      }
      for (RegionHandle r = 0; r <= max_region; ++r) {
        registry.register_region("region " + std::to_string(r),
                                 RegionType::kTask);
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  const trace::TraceAnalysis analysis = trace::analyze_trace(recorded);
  whatif::WhatIfProfile profile;
  const whatif::Error build_error =
      whatif::WhatIfProfile::build(recorded, analysis, *names, &profile);
  if (!build_error.ok()) return report_whatif_error(build_error);

  whatif::Report report;
  report.summarize(profile);
  report.rank_fraction = rank_percent / 100.0;
  for (const whatif::TargetSpec& target : targets) {
    std::vector<std::size_t> indices;
    const whatif::Error resolve_error =
        profile.resolve(target.path, &indices);
    if (!resolve_error.ok()) return report_whatif_error(resolve_error);
    report.projections.push_back(
        profile.project(indices, target.fraction, thread_counts));
  }
  if (targets.empty()) {
    report.top_targets =
        profile.rank_targets(report.rank_fraction, thread_counts);
  }

  {
    std::ostringstream os;
    whatif::render_whatif_text(report, os);
    std::fputs(os.str().c_str(), stdout);
  }
  if (!json_out.empty()) {
    const std::string json = whatif::render_whatif_json(report);
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("whatif JSON written to %s\n", json_out.c_str());
  }
  return 0;
}

/// `taskprof_cli whatif-validate ...`: run the analytical-vs-sim-replay
/// tolerance gate over the BOTS matrix.  Exit 3 when any case misses the
/// tolerance (or changes program structure).
int cmd_whatif_validate(int argc, char** argv) {
  whatif::ValidateOptions options;
  std::string json_out;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--kernels=", 0) == 0) {
      std::stringstream ss(value_of("--kernels="));
      std::string item;
      options.kernels.clear();
      while (std::getline(ss, item, ',')) options.kernels.push_back(item);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads.clear();
      if (!parse_int_list(value_of("--threads="), &options.threads)) {
        std::fprintf(stderr, "--threads wants e.g. 2,4,8\n");
        return 2;
      }
    } else if (arg.rfind("--optimize=", 0) == 0) {
      std::vector<double> percents;
      if (!parse_double_list(value_of("--optimize="), &percents)) {
        std::fprintf(stderr, "--optimize wants percents, e.g. 25,50,90\n");
        return 2;
      }
      options.fractions.clear();
      for (const double percent : percents) {
        if (!(percent > 0.0) || percent > 100.0) {
          return report_whatif_error(
              {whatif::ErrorCode::kBadFraction,
               "--optimize percents must be in (0,100]"});
        }
        options.fractions.push_back(percent / 100.0);
      }
    } else if (arg == "--size=test") {
      options.size = bots::SizeClass::kTest;
    } else if (arg == "--size=small") {
      options.size = bots::SizeClass::kSmall;
    } else if (arg == "--size=medium") {
      options.size = bots::SizeClass::kMedium;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      options.tolerance = std::stod(value_of("--tolerance="));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_out = value_of("--json=");
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }

  whatif::Error error;
  const whatif::ValidateReport report =
      whatif::run_validation(options, &error);
  if (!error.ok()) return report_whatif_error(error);

  {
    std::ostringstream os;
    whatif::render_validate_text(report, os);
    std::fputs(os.str().c_str(), stdout);
  }
  if (!json_out.empty()) {
    const std::string json = whatif::render_validate_json(report);
    std::FILE* f = std::fopen(json_out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("validation JSON written to %s\n", json_out.c_str());
  }
  return report.all_within() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "load") == 0) {
    return cmd_load(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "merge") == 0) {
    return cmd_merge(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "diagnose") == 0) {
    return cmd_diagnose(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "whatif") == 0) {
    return cmd_whatif(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "whatif-validate") == 0) {
    return cmd_whatif_validate(argc, argv);
  }
  CliOptions cli;
  if (!parse(argc, argv, cli)) {
    usage(argv[0]);
    return 2;
  }

  // Post-mortem mode: analyze a previously recorded trace file.
  if (!cli.analyze_trace.empty()) {
    try {
      const trace::Trace loaded = trace::read_trace_file(cli.analyze_trace);
      std::printf("loaded %zu events from %zu threads\n",
                  loaded.event_count(), loaded.thread_count());
      // Region names are not stored in the trace file; analyses that need
      // them use a registry with generated names.
      RegionRegistry names;
      RegionHandle max_region = 0;
      for (const auto& event : loaded.merged()) {
        if (event.region != kInvalidRegion) {
          max_region = std::max(max_region, event.region);
        }
      }
      for (RegionHandle r = 0; r <= max_region; ++r) {
        names.register_region("region " + std::to_string(r),
                              RegionType::kTask);
      }
      const trace::TraceAnalysis analysis = trace::analyze_trace(loaded);
      std::fputs(trace::render_analysis(analysis, names).c_str(), stdout);
      std::fputs(trace::render_timeline(loaded).c_str(), stdout);
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 1;
    }
  }

  auto kernel = bots::make_kernel(cli.kernel);
  if (kernel == nullptr) {
    std::fprintf(stderr, "unknown kernel: %s\n", cli.kernel.c_str());
    return 2;
  }

  rt::Topology topology;
  if (!cli.topology_spec.empty() &&
      !parse_topology_spec(cli.topology_spec, topology)) {
    std::fprintf(stderr, "bad --topology spec: %s (want DxW, e.g. 4x16)\n",
                 cli.topology_spec.c_str());
    return 2;
  }

  std::unique_ptr<rt::Runtime> runtime;
  rt::RealRuntime* real_runtime = nullptr;
  if (cli.engine == "sim") {
    if (cli.scheduler != "chase_lev") {
      std::fprintf(stderr, "--scheduler applies to --engine=real only\n");
      return 2;
    }
    rt::SimConfig sim_config;
    sim_config.topology = topology;
    runtime = std::make_unique<rt::SimRuntime>(sim_config);
  } else if (cli.engine == "real") {
    rt::RealConfig config;
    config.topology = topology;
    if (cli.scheduler == "chase_lev") {
      config.scheduler = rt::SchedulerKind::kChaseLev;
    } else if (cli.scheduler == "mutex_deque") {
      config.scheduler = rt::SchedulerKind::kMutexDeque;
    } else if (cli.scheduler == "taskgraph") {
      config.scheduler = rt::SchedulerKind::kTaskGraph;
    } else {
      std::fprintf(stderr, "unknown scheduler: %s\n", cli.scheduler.c_str());
      return 2;
    }
    auto real = std::make_unique<rt::RealRuntime>(config);
    real_runtime = real.get();
    runtime = std::move(real);
  } else {
    std::fprintf(stderr, "unknown engine: %s\n", cli.engine.c_str());
    return 2;
  }

  RegionRegistry registry;
  std::unique_ptr<Instrumentor> instrumentor;
  std::unique_ptr<trace::TraceRecorder> recorder;
  std::unique_ptr<telemetry::Registry> telem;
  std::unique_ptr<telemetry::TimedHooks> timed;
  rt::FanoutHooks fanout;
  if (cli.instrumented) {
    MeasureOptions measure;
    if (!cli.snapshot_out.empty() || !cli.ingest_socket.empty()) {
      // Non-zero arms the capture handshake in every profiler's event
      // path; the actual cadence lives in the flusher.
      measure.snapshot_every = static_cast<Ticks>(
          cli.snapshot_every_ms > 0 ? cli.snapshot_every_ms * 1'000'000 : 1);
    }
    instrumentor = std::make_unique<Instrumentor>(registry, measure);
    fanout.add(instrumentor.get());
  }
  if (cli.trace) {
    recorder = std::make_unique<trace::TraceRecorder>();
    fanout.add(recorder.get());
  }
  if (cli.telemetry) telem = std::make_unique<telemetry::Registry>();
  if (cli.instrumented || cli.trace) {
    // With telemetry on, the timing decorator sits between the engine and
    // the measurement hooks so their cost lands in the telemetry too.
    if (telem != nullptr) {
      timed = std::make_unique<telemetry::TimedHooks>(&fanout, telem.get());
      runtime->set_hooks(timed.get());
    } else {
      runtime->set_hooks(&fanout);
    }
  }
  if (telem != nullptr) runtime->set_telemetry(telem.get());
  std::unique_ptr<snapshot::SnapshotFlusher> flusher;
  std::unique_ptr<ingest::IngestFlushSink> ingest_sink;
  if (instrumentor != nullptr &&
      (!cli.snapshot_out.empty() || !cli.ingest_socket.empty())) {
    snapshot::FlusherOptions flush_options;
    flush_options.path = cli.snapshot_out;
    flush_options.interval =
        static_cast<Ticks>(cli.snapshot_every_ms) * 1'000'000;
    flush_options.telemetry = telem.get();
    if (!cli.ingest_socket.empty()) {
      ingest::ClientOptions client_options;
      client_options.socket_path = cli.ingest_socket;
      client_options.producer_name = cli.kernel;
      ingest_sink =
          std::make_unique<ingest::IngestFlushSink>(std::move(client_options));
      flush_options.sink = ingest_sink.get();
      // Fleet producers de-synchronize their flush cadence.
      flush_options.jitter_fraction = 0.1;
    }
    flusher = std::make_unique<snapshot::SnapshotFlusher>(
        *instrumentor, registry, std::move(flush_options));
    snapshot::install_crash_flush(flusher.get());
    flusher->start();
  }
  // --repeat runs the kernel on one runtime/registry/instrumentor: the
  // profile aggregates across runs (RegionRegistry dedupes identical
  // re-registrations), and with --scheduler=taskgraph run 1 records the
  // task graph while runs 2..N replay it through the static schedule.
  bots::KernelResult result;
  for (int run = 0; run < cli.repeat; ++run) {
    result = kernel->run(*runtime, registry, cli.config);
    if (!result.ok) break;
  }
  runtime->set_hooks(nullptr);
  runtime->set_telemetry(nullptr);
  if (real_runtime != nullptr && cli.scheduler == "taskgraph") {
    if (real_runtime->taskgraph_stale()) {
      std::printf("taskgraph: %zu nodes recorded, %d replay run(s), "
                  "diverged (fell back to chase_lev; cause: %s)\n",
                  real_runtime->taskgraph_size(),
                  cli.repeat > 1 ? cli.repeat - 1 : 0,
                  rt::scheduler_note_name(
                      real_runtime->taskgraph_fallback_reason()));
    } else {
      std::printf("taskgraph: %zu nodes recorded, %d replay run(s), "
                  "shape stable\n",
                  real_runtime->taskgraph_size(),
                  cli.repeat > 1 ? cli.repeat - 1 : 0);
    }
  }
  if (flusher != nullptr) flusher->stop();

  telemetry::Snapshot telemetry_snapshot;
  if (telem != nullptr) telemetry_snapshot = telem->snapshot();

  if (cli.trace) {
    const trace::Trace recorded = recorder->take();
    std::printf("--- trace: %zu events ---\n", recorded.event_count());
    if (!cli.trace_out.empty()) {
      try {
        trace::write_trace_file(cli.trace_out, recorded);
        std::printf("trace written to %s\n", cli.trace_out.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
      }
    }
    if (!cli.chrome_trace.empty()) {
      try {
        trace::ChromeExportOptions chrome;
        chrome.registry = &registry;
        chrome.telemetry = telem != nullptr ? &telemetry_snapshot : nullptr;
        trace::write_chrome_trace(cli.chrome_trace, recorded, chrome);
        std::printf("chrome trace written to %s (open in ui.perfetto.dev)\n",
                    cli.chrome_trace.c_str());
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
      }
    }
    const trace::TraceAnalysis analysis = trace::analyze_trace(recorded);
    std::fputs(trace::render_analysis(analysis, registry).c_str(), stdout);
    // Ranked what-if targets: which construct to optimize first, and the
    // projected payoff if it ran 50% faster.
    whatif::WhatIfProfile whatif_profile;
    if (whatif::WhatIfProfile::build(recorded, analysis, registry,
                                     &whatif_profile)
            .ok()) {
      whatif::Report whatif_report;
      whatif_report.summarize(whatif_profile);
      whatif_report.top_targets =
          whatif_profile.rank_targets(whatif_report.rank_fraction, {});
      std::ostringstream os;
      whatif::render_top_targets_text(whatif_report, 5, os);
      std::fputs(os.str().c_str(), stdout);
    }
    std::fputs(trace::render_timeline(recorded).c_str(), stdout);
  }

  if (telem != nullptr) {
    std::fputs(render_telemetry(telemetry_snapshot).c_str(), stdout);
    if (!cli.telemetry_json.empty()) {
      std::FILE* f = std::fopen(cli.telemetry_json.c_str(), "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", cli.telemetry_json.c_str());
        return 1;
      }
      const std::string json = telemetry::snapshot_to_json(telemetry_snapshot);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("telemetry snapshot written to %s\n",
                  cli.telemetry_json.c_str());
    }
  }

  if (!cli.instrumented) {
    std::printf("parallel span: %s | tasks executed: %s | self-check: %s\n",
                format_ticks(result.stats.parallel_ticks).c_str(),
                format_count(result.stats.tasks_executed).c_str(),
                result.ok ? "passed" : "FAILED");
    return result.ok ? 0 : 1;
  }
  instrumentor->finalize();
  const AggregateProfile profile = instrumentor->aggregate();
  if (flusher != nullptr) {
    if (flusher->flush_final()) {
      if (!cli.snapshot_out.empty()) {
        std::printf("snapshot written to %s (%llu flushes)\n",
                    cli.snapshot_out.c_str(),
                    static_cast<unsigned long long>(flusher->flush_count()));
      }
    } else {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   flusher->last_error().c_str());
    }
    if (ingest_sink != nullptr) {
      std::printf("ingest: streamed %llu snapshot(s) to %s "
                  "(%llu rebase(s))\n",
                  static_cast<unsigned long long>(
                      ingest_sink->client().total_sends()),
                  cli.ingest_socket.c_str(),
                  static_cast<unsigned long long>(
                      ingest_sink->client().total_rebases()));
    }
    snapshot::install_crash_flush(nullptr);
  }

  if (cli.report == "summary" || cli.report == "all") {
    print_summary(result, profile, registry);
  }
  if (cli.report == "tree" || cli.report == "all") {
    std::fputs(render_profile(profile, registry).c_str(), stdout);
  }
  if (cli.report == "cube") {
    std::fputs(render_cube_xml(profile, registry).c_str(), stdout);
  }
  if (cli.report == "csv") {
    std::fputs(render_csv(profile, registry).c_str(), stdout);
  }
  if (cli.report == "findings" || cli.report == "all") {
    std::fputs(render_findings(diagnose(profile, registry)).c_str(), stdout);
  }
  if (!cli.report_json.empty()) {
    const std::string json = render_report_json(profile, registry);
    std::FILE* f = std::fopen(cli.report_json.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", cli.report_json.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("report JSON written to %s\n", cli.report_json.c_str());
  }
  return result.ok ? 0 : 1;
}
