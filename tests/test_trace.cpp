#include "trace/analysis.hpp"
#include "trace/file.hpp"
#include "trace/recorder.hpp"
#include "trace/sampling.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

using trace::EventKind;
using trace::Trace;
using trace::TraceEvent;
using trace::TraceRecorder;

rt::TaskAttrs attrs_for(RegionHandle region,
                        rt::TaskBinding binding = rt::TaskBinding::kTied) {
  rt::TaskAttrs attrs;
  attrs.region = region;
  attrs.binding = binding;
  return attrs;
}

class TraceTest : public ::testing::Test {
 protected:
  RegionRegistry registry_;
  RegionHandle task_ = registry_.register_region("t", RegionType::kTask);

  Trace record(int threads, const std::function<void(rt::TaskContext&)>& root,
               rt::SimConfig config = {}) {
    rt::SimRuntime sim(config);
    TraceRecorder recorder;
    sim.set_hooks(&recorder);
    sim.parallel(threads, [&root](rt::TaskContext& ctx) {
      if (ctx.single()) root(ctx);
    });
    sim.set_hooks(nullptr);
    return recorder.take();
  }
};

TEST_F(TraceTest, RecordsBalancedEventStreams) {
  const Trace trace = record(2, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 5; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(1'000); },
                      attrs_for(task_));
    }
    ctx.taskwait();
  });
  EXPECT_EQ(trace.thread_count(), 2u);
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t creates = 0;
  for (const TraceEvent& event : trace.merged()) {
    if (event.kind == EventKind::kTaskBegin) ++begins;
    if (event.kind == EventKind::kTaskEnd) ++ends;
    if (event.kind == EventKind::kCreateEnd) ++creates;
  }
  EXPECT_EQ(begins, 5u);
  EXPECT_EQ(ends, 5u);
  EXPECT_EQ(creates, 5u);
}

TEST_F(TraceTest, MergedEventsAreTimeOrdered) {
  const Trace trace = record(4, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 20; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(2'000); },
                      attrs_for(task_));
    }
  });
  const auto& merged = trace.merged();
  ASSERT_GT(merged.size(), 0u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time, merged[i].time);
  }
  const auto [begin, end] = trace.time_span();
  EXPECT_EQ(begin, merged.front().time);
  EXPECT_EQ(end, merged.back().time);
}

TEST_F(TraceTest, TakeResetsTheRecorder) {
  rt::SimRuntime sim;
  TraceRecorder recorder;
  sim.set_hooks(&recorder);
  sim.parallel(1, [](rt::TaskContext& ctx) { ctx.work(100); });
  const std::size_t first_count = recorder.event_count();
  EXPECT_GT(first_count, 0u);
  const Trace first = recorder.take();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(first.event_count(), first_count);
  sim.parallel(1, [](rt::TaskContext& ctx) { ctx.work(100); });
  sim.set_hooks(nullptr);
  EXPECT_GT(recorder.event_count(), 0u);
}

TEST_F(TraceTest, AnalysisReconstructsTaskLifetimes) {
  const Trace trace = record(2, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 6; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(10'000); },
                      attrs_for(task_));
    }
    ctx.taskwait();
  });
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  ASSERT_EQ(analysis.tasks.size(), 6u);
  for (const trace::TaskLifetime& life : analysis.tasks) {
    EXPECT_TRUE(life.completed);
    EXPECT_EQ(life.region, task_);
    EXPECT_EQ(life.parent, kImplicitTaskId);
    EXPECT_GE(life.begin, life.created);  // cannot start before creation
    EXPECT_GE(life.end, life.begin);
    EXPECT_GE(life.active, 10'000);
    EXPECT_EQ(life.fragments, 1);  // no suspension in this program
    EXPECT_EQ(life.migrations, 0);
  }
  EXPECT_GE(analysis.total_active, 60'000);
  EXPECT_EQ(analysis.queue_latency.count, 6u);
  EXPECT_GT(analysis.queue_latency.mean(), 0.0);
}

TEST_F(TraceTest, SuspendedTasksHaveMultipleFragments) {
  const Trace trace = record(1, [this](rt::TaskContext& ctx) {
    ctx.create_task(
        [this](rt::TaskContext& outer) {
          outer.work(1'000);
          outer.create_task([](rt::TaskContext& c) { c.work(1'000); },
                            attrs_for(task_));
          outer.taskwait();  // suspension: child runs in between
          outer.work(1'000);
        },
        attrs_for(task_));
    ctx.taskwait();
  });
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  ASSERT_EQ(analysis.tasks.size(), 2u);
  int max_fragments = 0;
  for (const auto& life : analysis.tasks) {
    max_fragments = std::max(max_fragments, life.fragments);
  }
  EXPECT_GE(max_fragments, 2);  // the outer task was split by its child
  EXPECT_GT(analysis.instance_fragments.max, 1);
}

TEST_F(TraceTest, ParentChildChainReconstructed) {
  // A chain of 5 nested tasks: critical chain length must be 5 and the
  // chain time at least the summed work.
  std::function<void(rt::TaskContext&, int)> chain =
      [&chain, this](rt::TaskContext& ctx, int depth) {
        ctx.create_task(
            [&chain, depth](rt::TaskContext& c) {
              c.work(10'000);
              if (depth > 1) {
                chain(c, depth - 1);
                c.taskwait();
              }
            },
            attrs_for(task_));
      };
  const Trace trace = record(2, [&](rt::TaskContext& ctx) {
    chain(ctx, 5);
    ctx.taskwait();
  });
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  EXPECT_EQ(analysis.tasks.size(), 5u);
  EXPECT_EQ(analysis.critical_chain_length, 5);
  EXPECT_GE(analysis.critical_chain_time, 50'000);
}

TEST_F(TraceTest, ChainLengthEstimatesConcurrentInstances) {
  // Paper §V-B: "the longest dependency chain (e.g. the recursion depth)
  // of an application may serve as a good estimate for the number of
  // concurrent tasks".  Check the estimate against the profiler.
  std::function<void(rt::TaskContext&, int)> rec =
      [&rec, this](rt::TaskContext& ctx, int depth) {
        ctx.create_task(
            [&rec, depth](rt::TaskContext& c) {
              c.work(500);
              if (depth > 0) {
                rec(c, depth - 1);
                rec(c, depth - 1);
                c.taskwait();
              }
            },
            attrs_for(task_));
      };
  rt::SimRuntime sim;
  RegionRegistry registry;
  Instrumentor instr(registry);
  TraceRecorder recorder;
  rt::FanoutHooks fanout{&instr, &recorder};
  sim.set_hooks(&fanout);
  sim.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) {
      rec(ctx, 7);
      ctx.taskwait();
    }
  });
  sim.set_hooks(nullptr);
  instr.finalize();

  const trace::TraceAnalysis analysis =
      trace::analyze_trace(recorder.take());
  const AggregateProfile profile = instr.aggregate();
  EXPECT_EQ(analysis.critical_chain_length, 8);  // depth 7 + root
  // The measured max concurrent instances is bounded by the chain length
  // (strict scheduling keeps the suspended stack on one root-leaf path).
  EXPECT_LE(profile.max_concurrent_any_thread,
            static_cast<std::size_t>(analysis.critical_chain_length));
  EXPECT_GE(profile.max_concurrent_any_thread, 4u);
}

TEST_F(TraceTest, BusyTimeMatchesProfilerStubTime) {
  // Cross-validation of trace replay against the profiler: total task
  // fragment time in the trace equals the profiler's stub-node total.
  rt::SimRuntime sim;
  RegionRegistry registry;
  const RegionHandle task = registry.register_region("t", RegionType::kTask);
  Instrumentor instr(registry);
  TraceRecorder recorder;
  rt::FanoutHooks fanout{&instr, &recorder};
  sim.set_hooks(&fanout);
  sim.parallel(3, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 12; ++i) {
      ctx.create_task(
          [&](rt::TaskContext& outer) {
            outer.work(3'000);
            outer.create_task([](rt::TaskContext& c) { c.work(2'000); },
                              attrs_for(task));
            outer.taskwait();
          },
          attrs_for(task));
    }
  });
  sim.set_hooks(nullptr);
  instr.finalize();

  const trace::TraceAnalysis analysis =
      trace::analyze_trace(recorder.take());
  Ticks stub_total = 0;
  const AggregateProfile profile = instr.aggregate();
  for_each_node(profile.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) stub_total += node.inclusive;
  });
  EXPECT_EQ(analysis.total_active, stub_total);

  Ticks busy_total = 0;
  for (const trace::ThreadUsage& usage : analysis.threads) {
    busy_total += usage.busy;
    EXPECT_LE(usage.utilization(), 1.0);
    EXPECT_GE(usage.utilization(), 0.0);
  }
  EXPECT_EQ(busy_total, analysis.total_active);
}

TEST_F(TraceTest, SyncDecompositionSplitsManagementAndWaiting) {
  // One thread executes 50 tiny tasks back to back (short gaps =
  // management); the other threads starve (long gaps = waiting).
  const Trace trace = record(4, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(300); },
                      attrs_for(task_));
    }
    ctx.taskwait();
  });
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  EXPECT_GT(analysis.sync_total, 0);
  EXPECT_GT(analysis.sync_management, 0);
  EXPECT_EQ(analysis.sync_total,
            analysis.sync_management + analysis.sync_waiting);
  EXPECT_GT(analysis.management_to_execution_ratio(), 0.0);
}

TEST_F(TraceTest, MigrationsAppearInLifetimes) {
  rt::SimConfig config;  // migration on by default
  const Trace trace = record(
      4,
      [this](rt::TaskContext& ctx) {
        for (int i = 0; i < 24; ++i) {
          ctx.create_task(
              [this](rt::TaskContext& outer) {
                outer.create_task([](rt::TaskContext& c) { c.work(20'000); },
                                  attrs_for(task_));
                outer.taskwait();
                outer.work(2'000);
              },
              attrs_for(task_, rt::TaskBinding::kUntied));
        }
      },
      config);
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  int migrations = 0;
  for (const auto& life : analysis.tasks) migrations += life.migrations;
  EXPECT_GT(migrations, 0);
}

TEST_F(TraceTest, RenderAnalysisAndTimelineProduceText) {
  const Trace trace = record(2, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 8; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(5'000); },
                      attrs_for(task_));
    }
    ctx.taskwait();
  });
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  const std::string report = trace::render_analysis(analysis, registry_);
  EXPECT_NE(report.find("task construct"), std::string::npos);
  EXPECT_NE(report.find("management"), std::string::npos);
  EXPECT_NE(report.find("longest dependency chain"), std::string::npos);
  const std::string timeline = trace::render_timeline(trace, 40);
  EXPECT_NE(timeline.find("t0 |"), std::string::npos);
  EXPECT_NE(timeline.find("t1 |"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceHandled) {
  TraceRecorder recorder;
  const Trace trace = recorder.take();
  EXPECT_EQ(trace.event_count(), 0u);
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  EXPECT_TRUE(analysis.tasks.empty());
  EXPECT_EQ(trace::render_timeline(trace), "(empty trace)\n");
}

// ---- Sampling reconstruction (paper §II) -----------------------------------

TEST_F(TraceTest, SamplingConvergesToExactAggregate) {
  const Trace trace = record(2, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 16; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(50'000); },
                      attrs_for(task_));
    }
    ctx.taskwait();
  });
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  const Ticks exact = analysis.total_active;
  ASSERT_GT(exact, 0);

  const auto coarse = trace::sample_trace(trace, 50'000);
  const auto fine = trace::sample_trace(trace, 200);
  const auto coarse_err = std::abs(coarse.estimated_time(task_) - exact);
  const auto fine_err = std::abs(fine.estimated_time(task_) - exact);
  EXPECT_LE(fine_err, coarse_err);
  // Fine-rate estimate within 2 % of the exact value.
  EXPECT_LE(static_cast<double>(fine_err), 0.02 * static_cast<double>(exact));
}

TEST_F(TraceTest, SamplingCountsAreConsistent) {
  const Trace trace = record(2, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 4; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(10'000); },
                      attrs_for(task_));
    }
    ctx.taskwait();
  });
  const auto histogram = trace::sample_trace(trace, 1'000);
  std::uint64_t task_total = 0;
  for (const auto& [region, samples] : histogram.task_samples) {
    EXPECT_EQ(region, task_);
    task_total += samples;
  }
  EXPECT_EQ(histogram.total_samples, task_total + histogram.other_samples);
  EXPECT_GT(histogram.total_samples, 0u);
  EXPECT_EQ(histogram.estimated_time(static_cast<RegionHandle>(999)), 0);
}

TEST_F(TraceTest, SamplingHandlesSuspendedFragments) {
  // A suspended task's gap must not be attributed to it.
  const Trace trace = record(1, [this](rt::TaskContext& ctx) {
    ctx.create_task(
        [this](rt::TaskContext& outer) {
          outer.work(5'000);
          outer.create_task([](rt::TaskContext& c) { c.work(50'000); },
                            attrs_for(task_));
          outer.taskwait();
          outer.work(5'000);
        },
        attrs_for(task_));
    ctx.taskwait();
  });
  const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
  const auto histogram = trace::sample_trace(trace, 100);
  const Ticks estimate = histogram.estimated_time(task_);
  // Estimate tracks total *active* time (fragments), not wall span.
  const double error = std::abs(static_cast<double>(estimate) -
                                static_cast<double>(analysis.total_active));
  EXPECT_LE(error, 0.05 * static_cast<double>(analysis.total_active));
}

// ---- Trace files -------------------------------------------------------------

class TraceFileTest : public TraceTest {
 protected:
  std::string path_ = ::testing::TempDir() + "/taskprof_test.trace";
};

TEST_F(TraceFileTest, RoundTripPreservesEveryEvent) {
  const Trace original = record(3, [this](rt::TaskContext& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.create_task(
          [this](rt::TaskContext& outer) {
            outer.work(2'000);
            outer.create_task([](rt::TaskContext& c) { c.work(1'000); },
                              attrs_for(task_));
            outer.taskwait();
          },
          attrs_for(task_));
    }
  });
  trace::write_trace_file(path_, original);
  const Trace loaded = trace::read_trace_file(path_);

  ASSERT_EQ(loaded.thread_count(), original.thread_count());
  ASSERT_EQ(loaded.event_count(), original.event_count());
  for (ThreadId t = 0; t < original.thread_count(); ++t) {
    const auto& a = original.thread_events(t);
    const auto& b = loaded.thread_events(t);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].time, b[i].time);
      EXPECT_EQ(a[i].thread, b[i].thread);
      EXPECT_EQ(a[i].kind, b[i].kind);
      EXPECT_EQ(a[i].task, b[i].task);
      EXPECT_EQ(a[i].region, b[i].region);
      EXPECT_EQ(a[i].parameter, b[i].parameter);
      EXPECT_EQ(a[i].peer, b[i].peer);
    }
  }
  // Analyses agree on original and loaded traces.
  const auto analysis_a = trace::analyze_trace(original);
  const auto analysis_b = trace::analyze_trace(loaded);
  EXPECT_EQ(analysis_a.total_active, analysis_b.total_active);
  EXPECT_EQ(analysis_a.tasks.size(), analysis_b.tasks.size());
  std::remove(path_.c_str());
}

TEST_F(TraceFileTest, EmptyTraceRoundTrips) {
  TraceRecorder recorder;
  trace::write_trace_file(path_, recorder.take());
  const Trace loaded = trace::read_trace_file(path_);
  EXPECT_EQ(loaded.event_count(), 0u);
  std::remove(path_.c_str());
}

TEST_F(TraceFileTest, MissingFileThrows) {
  EXPECT_THROW(trace::read_trace_file(path_ + ".does_not_exist"),
               std::runtime_error);
}

TEST_F(TraceFileTest, BadMagicThrows) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a trace file", f);
  std::fclose(f);
  EXPECT_THROW(trace::read_trace_file(path_), std::runtime_error);
  std::remove(path_.c_str());
}

TEST_F(TraceFileTest, TruncatedFileThrows) {
  const Trace original = record(1, [this](rt::TaskContext& ctx) {
    ctx.create_task([](rt::TaskContext& c) { c.work(100); },
                    attrs_for(task_));
  });
  trace::write_trace_file(path_, original);
  // Chop the last 10 bytes off.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 10);
  ASSERT_EQ(truncate(path_.c_str(), size - 10), 0);
  EXPECT_THROW(trace::read_trace_file(path_), std::runtime_error);
  std::remove(path_.c_str());
}

TEST_F(TraceFileTest, TrailingGarbageThrows) {
  const Trace original = record(1, [this](rt::TaskContext& ctx) {
    ctx.create_task([](rt::TaskContext& c) { c.work(100); },
                    attrs_for(task_));
  });
  trace::write_trace_file(path_, original);
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("junk", f);
  std::fclose(f);
  EXPECT_THROW(trace::read_trace_file(path_), std::runtime_error);
  std::remove(path_.c_str());
}

TEST_F(TraceTest, EventKindNamesCovered) {
  EXPECT_EQ(trace::event_kind_name(EventKind::kTaskBegin), "task_begin");
  EXPECT_EQ(trace::event_kind_name(EventKind::kMigrate), "migrate");
  EXPECT_EQ(trace::event_kind_name(EventKind::kBarrierEnd), "barrier_end");
}

}  // namespace
}  // namespace taskprof
