// Ingestion wire protocol: frame codec round-trips, the incremental
// FrameReader (arbitrary chunking, typed rejection of corrupt headers),
// and the Session state machine's error policy — framing errors close
// the session, semantic errors keep it open, duplicate deltas are
// re-acked idempotently.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "ingest/delta.hpp"
#include "ingest/protocol.hpp"
#include "ingest/session.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes concat(std::initializer_list<Bytes> parts) {
  Bytes out;
  for (const Bytes& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

/// Parse every frame out of a reply byte stream.
std::vector<Frame> parse_all(const Bytes& bytes) {
  FrameReader reader("test");
  reader.feed(bytes);
  std::vector<Frame> frames;
  while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  return frames;
}

/// Minimal one-node snapshot whose visit count is `visits`.
snapshot::SnapshotData tiny_snapshot(std::uint64_t visits) {
  snapshot::SnapshotData data;
  data.registry = std::make_unique<RegionRegistry>();
  const RegionHandle implicit = data.registry->register_region(
      "implicit task", RegionType::kImplicitTask);
  data.profile.thread_count = 1;
  data.profile.max_concurrent_per_thread = {1};
  data.profile.max_concurrent_any_thread = 1;
  data.profile.implicit_root =
      data.profile.pool.allocate(implicit, kNoParameter, false, nullptr);
  data.profile.implicit_root->visits = visits;
  data.profile.implicit_root->inclusive = static_cast<Ticks>(visits * 10);
  for (std::uint64_t i = 0; i < visits; ++i) {
    data.profile.implicit_root->visit_stats.add(10);
  }
  data.meta.flush_seq = 1;
  data.meta.process_id = 7;
  return data;
}

TEST(IngestProtocol, AllPayloadsRoundTrip) {
  {
    HelloFrame in{kProtocolVersion, 42, "producer-a"};
    const auto out = decode_hello(parse_all(encode_hello(in))[0], "t");
    EXPECT_EQ(out.protocol_version, in.protocol_version);
    EXPECT_EQ(out.process_id, 42u);
    EXPECT_EQ(out.producer_name, "producer-a");
  }
  {
    HelloAckFrame in{9, 3};
    const auto out = decode_hello_ack(parse_all(encode_hello_ack(in))[0], "t");
    EXPECT_EQ(out.session_id, 9u);
    EXPECT_EQ(out.last_acked_seq, 3u);
  }
  {
    DeltaFrame in;
    in.seq = 5;
    in.base_seq = 4;
    in.rebase = false;
    in.snapshot = snapshot::encode_snapshot(tiny_snapshot(3));
    const auto out = decode_delta(parse_all(encode_delta(in))[0], "t");
    EXPECT_EQ(out.seq, 5u);
    EXPECT_EQ(out.base_seq, 4u);
    EXPECT_FALSE(out.rebase);
    EXPECT_EQ(out.snapshot, in.snapshot);
  }
  {
    const auto out =
        decode_delta_ack(parse_all(encode_delta_ack({17}))[0], "t");
    EXPECT_EQ(out.seq, 17u);
  }
  {
    const auto out =
        decode_heartbeat(parse_all(encode_heartbeat({0xbeef}))[0], "t");
    EXPECT_EQ(out.nonce, 0xbeefu);
  }
  {
    EXPECT_EQ(decode_bye(parse_all(encode_bye({8}))[0], "t").final_seq, 8u);
    EXPECT_EQ(decode_bye_ack(parse_all(encode_bye_ack({8}))[0], "t").final_seq,
              8u);
  }
  {
    ErrorFrame in{Errc::kBadSeq, "gap"};
    const auto out = decode_error(parse_all(encode_error(in))[0], "t");
    EXPECT_EQ(out.code, Errc::kBadSeq);
    EXPECT_EQ(out.detail, "gap");
  }
  {
    const auto out = decode_report_request(
        parse_all(encode_report_request({ReportKind::kJson}))[0], "t");
    EXPECT_EQ(out.kind, ReportKind::kJson);
    ReportReplyFrame reply{ReportKind::kJson, {1, 2, 3}};
    const auto out2 =
        decode_report_reply(parse_all(encode_report_reply(reply))[0], "t");
    EXPECT_EQ(out2.kind, ReportKind::kJson);
    EXPECT_EQ(out2.body, (Bytes{1, 2, 3}));
  }
}

TEST(IngestProtocol, ReaderHandlesArbitraryChunking) {
  const Bytes stream = concat({encode_heartbeat({1}), encode_heartbeat({2}),
                               encode_bye({3})});
  // Byte-at-a-time is the worst case a nonblocking socket can produce.
  FrameReader reader("t");
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {
    reader.feed({&byte, 1});
    while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(decode_heartbeat(frames[0], "t").nonce, 1u);
  EXPECT_EQ(decode_heartbeat(frames[1], "t").nonce, 2u);
  EXPECT_EQ(decode_bye(frames[2], "t").final_seq, 3u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(IngestProtocol, TruncatedFrameStaysPending) {
  const Bytes frame = encode_heartbeat({1});
  FrameReader reader("t");
  reader.feed({frame.data(), frame.size() - 1});
  EXPECT_FALSE(reader.next().has_value());
  reader.feed({frame.data() + frame.size() - 1, 1});
  EXPECT_TRUE(reader.next().has_value());
}

TEST(IngestProtocol, CorruptHeadersThrowTyped) {
  {
    Bytes bad = encode_heartbeat({1});
    bad[0] = 'X';
    FrameReader reader("t");
    reader.feed(bad);
    try {
      (void)reader.next();
      FAIL() << "bad magic accepted";
    } catch (const IngestError& error) {
      EXPECT_EQ(error.code(), Errc::kBadMagic);
    }
  }
  {
    Bytes bad = encode_heartbeat({1});
    bad[4] = 0xee;  // unknown type byte
    FrameReader reader("t");
    reader.feed(bad);
    try {
      (void)reader.next();
      FAIL() << "bad type accepted";
    } catch (const IngestError& error) {
      EXPECT_EQ(error.code(), Errc::kBadType);
    }
  }
  {
    Bytes bad = encode_heartbeat({1});
    bad[5] = 0xff;  // size low byte: declared payload explodes
    bad[6] = 0xff;
    bad[7] = 0xff;
    bad[8] = 0x7f;
    FrameReader reader("t", /*max_payload=*/1024);
    reader.feed(bad);
    try {
      (void)reader.next();
      FAIL() << "oversized payload accepted";
    } catch (const IngestError& error) {
      EXPECT_EQ(error.code(), Errc::kLimit);
    }
  }
  {
    Bytes bad = encode_heartbeat({1});
    bad.back() ^= 0x01;  // payload bit flip
    FrameReader reader("t");
    reader.feed(bad);
    try {
      (void)reader.next();
      FAIL() << "bad CRC accepted";
    } catch (const IngestError& error) {
      EXPECT_EQ(error.code(), Errc::kBadCrc);
    }
  }
}

TEST(IngestProtocol, DeltaGrammarIsValidated) {
  DeltaFrame zero_seq;
  zero_seq.seq = 0;
  zero_seq.snapshot = {1};
  try {
    (void)decode_delta(parse_all(encode_delta(zero_seq))[0], "t");
    FAIL() << "seq 0 accepted";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.code(), Errc::kBadSeq);
  }
  DeltaFrame bad_rebase;
  bad_rebase.seq = 2;
  bad_rebase.base_seq = 1;
  bad_rebase.rebase = true;  // rebase must carry base_seq 0
  bad_rebase.snapshot = {1};
  try {
    (void)decode_delta(parse_all(encode_delta(bad_rebase))[0], "t");
    FAIL() << "rebase with base accepted";
  } catch (const IngestError& error) {
    EXPECT_EQ(error.code(), Errc::kBadSeq);
  }
}

// --- Session state machine --------------------------------------------------

Bytes delta_bytes(std::uint64_t seq, std::uint64_t base_seq, bool rebase,
                  const snapshot::SnapshotData& snap) {
  DeltaFrame frame;
  frame.seq = seq;
  frame.base_seq = base_seq;
  frame.rebase = rebase;
  frame.snapshot = snapshot::encode_snapshot(snap);
  return encode_delta(frame);
}

TEST(IngestSession, HandshakeStreamAndBye) {
  Session session(11, "t");
  session.consume(encode_hello({kProtocolVersion, 99, "p"}));
  ASSERT_EQ(session.state(), SessionState::kStreaming);
  {
    const auto replies = parse_all(session.take_output());
    ASSERT_EQ(replies.size(), 1u);
    const auto ack = decode_hello_ack(replies[0], "t");
    EXPECT_EQ(ack.session_id, 11u);
    EXPECT_EQ(ack.last_acked_seq, 0u);
  }
  session.consume(delta_bytes(1, 0, true, tiny_snapshot(2)));
  session.consume(delta_bytes(2, 1, false, tiny_snapshot(3)));
  {
    const auto replies = parse_all(session.take_output());
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(decode_delta_ack(replies[0], "t").seq, 1u);
    EXPECT_EQ(decode_delta_ack(replies[1], "t").seq, 2u);
  }
  ASSERT_NE(session.cumulative(), nullptr);
  // Rebase established visits=2; the follow-up delta added 3 more.
  EXPECT_EQ(session.cumulative()->profile.implicit_root->visits, 5u);
  session.consume(encode_bye({2}));
  EXPECT_TRUE(session.bye_received());
  EXPECT_EQ(session.state(), SessionState::kClosed);
  const auto replies = parse_all(session.take_output());
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(decode_bye_ack(replies[0], "t").final_seq, 2u);
}

TEST(IngestSession, DuplicateDeltaIsReackedNotMerged) {
  Session session(1, "t");
  session.consume(encode_hello({kProtocolVersion, 1, "p"}));
  const Bytes delta = delta_bytes(1, 0, true, tiny_snapshot(4));
  session.consume(delta);
  session.consume(delta);  // reconnect replay of an already-acked delta
  (void)session.take_output();
  EXPECT_EQ(session.counters().deltas_applied, 1u);
  EXPECT_EQ(session.counters().deltas_duplicate, 1u);
  EXPECT_EQ(session.cumulative()->profile.implicit_root->visits, 4u);
}

TEST(IngestSession, SemanticErrorsKeepTheSessionOpen) {
  Session session(1, "t");
  session.consume(encode_hello({kProtocolVersion, 1, "p"}));
  (void)session.take_output();
  // Sequence gap: rejected with kBadSeq, session still streaming.
  session.consume(delta_bytes(5, 4, false, tiny_snapshot(1)));
  {
    const auto replies = parse_all(session.take_output());
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(decode_error(replies[0], "t").code, Errc::kBadSeq);
  }
  EXPECT_EQ(session.state(), SessionState::kStreaming);
  // Recovery: the producer rebases and the stream continues.
  session.consume(delta_bytes(1, 0, true, tiny_snapshot(2)));
  const auto replies = parse_all(session.take_output());
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(decode_delta_ack(replies[0], "t").seq, 1u);
}

TEST(IngestSession, FramingErrorsCloseTheSession) {
  Session session(1, "t");
  session.consume(encode_hello({kProtocolVersion, 1, "p"}));
  (void)session.take_output();
  Bytes garbage = encode_heartbeat({1});
  garbage[0] = 'Z';
  session.consume(garbage);
  const auto replies = parse_all(session.take_output());
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, FrameType::kError);
  EXPECT_EQ(decode_error(replies[0], "t").code, Errc::kBadMagic);
  EXPECT_EQ(session.state(), SessionState::kClosed);
}

TEST(IngestSession, WrongStateAndVersionAreTyped) {
  {
    Session session(1, "t");
    session.consume(delta_bytes(1, 0, true, tiny_snapshot(1)));
    const auto replies = parse_all(session.take_output());
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(decode_error(replies[0], "t").code, Errc::kBadState);
    EXPECT_EQ(session.state(), SessionState::kAwaitHello);
  }
  {
    Session session(1, "t");
    session.consume(encode_hello({kProtocolVersion + 1, 1, "p"}));
    const auto replies = parse_all(session.take_output());
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(decode_error(replies[0], "t").code, Errc::kBadVersion);
  }
  {
    Session session(1, "t");
    session.consume(encode_hello({kProtocolVersion, 1, "p"}));
    session.consume(encode_hello({kProtocolVersion, 1, "p"}));
    const auto replies = parse_all(session.take_output());
    ASSERT_EQ(replies.size(), 2u);
    EXPECT_EQ(decode_error(replies[1], "t").code, Errc::kBadState);
  }
}

TEST(IngestSession, MalformedSnapshotPayloadIsRejectedNotFatal) {
  Session session(1, "t");
  session.consume(encode_hello({kProtocolVersion, 1, "p"}));
  (void)session.take_output();
  DeltaFrame frame;
  frame.seq = 1;
  frame.rebase = true;
  frame.snapshot = {0xde, 0xad, 0xbe, 0xef};  // not a .tpsnap
  session.consume(encode_delta(frame));
  const auto replies = parse_all(session.take_output());
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(decode_error(replies[0], "t").code, Errc::kMalformed);
  EXPECT_EQ(session.state(), SessionState::kStreaming);
  EXPECT_EQ(session.counters().deltas_rejected, 1u);
  EXPECT_EQ(session.last_seq(), 0u);  // nothing was acked
}

}  // namespace
}  // namespace taskprof::ingest
