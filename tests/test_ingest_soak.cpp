// Multi-producer crash-injection soak: 8 forked producers stream
// deltas concurrently, a seeded subset is SIGKILLed mid-stream (they
// never say Bye), and the daemon's aggregate must equal the offline
// snapshot::merge of the survivors' final snapshots — the dirty
// sessions' partial contributions are dropped, nothing of the
// survivors' is lost or double-counted.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/differential.hpp"
#include "ingest/client.hpp"
#include "ingest/daemon.hpp"
#include "ingest/delta.hpp"
#include "rt/runtime.hpp"
#include "snapshot/merge.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {
namespace {

using snapshot::SnapshotData;

constexpr int kProducers = 8;
constexpr int kStagesBeforeDoom = 3;
// Seeded, deterministic subset that gets SIGKILLed mid-stream.
const std::set<int> kDoomed = {1, 4, 6};

/// Deterministic synthetic cumulative for producer `index` at `stage`:
/// counters grow strictly with stage, each producer contributes its own
/// region (so the merge exercises handle remapping) plus one shared one.
SnapshotData producer_capture(int index, int stage) {
  SnapshotData data;
  data.registry = std::make_unique<RegionRegistry>();
  const RegionHandle implicit = data.registry->register_region(
      "implicit task", RegionType::kImplicitTask);
  const RegionHandle shared =
      data.registry->register_region("shared_phase", RegionType::kFunction);
  const RegionHandle own = data.registry->register_region(
      "worker_" + std::to_string(index), RegionType::kFunction);
  AggregateProfile& p = data.profile;
  p.thread_count = 1;
  p.max_concurrent_per_thread = {1};
  p.max_concurrent_any_thread = 1;
  p.total_task_switches = static_cast<std::uint64_t>(stage) * (index + 1);
  p.implicit_root = p.pool.allocate(implicit, kNoParameter, false, nullptr);
  const std::uint64_t visits = static_cast<std::uint64_t>(stage + 1) * 2;
  p.implicit_root->visits = visits;
  p.implicit_root->inclusive = static_cast<Ticks>(visits * (10 + index));
  for (std::uint64_t v = 0; v < visits; ++v) {
    p.implicit_root->visit_stats.add(static_cast<Ticks>(10 + index));
  }
  CallNode* mid =
      p.pool.allocate(shared, kNoParameter, false, p.implicit_root);
  mid->visits = visits;
  mid->inclusive = static_cast<Ticks>(visits * 3);
  for (std::uint64_t v = 0; v < visits; ++v) mid->visit_stats.add(3);
  CallNode* leaf = p.pool.allocate(own, kNoParameter, false, mid);
  leaf->visits = static_cast<std::uint64_t>(stage) + 1;
  leaf->inclusive = static_cast<Ticks>((stage + 1) * (index + 1));
  for (int v = 0; v <= stage; ++v) {
    leaf->visit_stats.add(static_cast<Ticks>(index + 1));
  }
  data.meta.flush_seq = static_cast<std::uint64_t>(stage) + 1;
  data.meta.process_id = 100 + static_cast<std::uint64_t>(index);
  return data;
}

std::string final_path(int index) {
  return testing::TempDir() + "soak_final_" + std::to_string(index) +
         ".scratch.tpsnap";
}

/// Child process body.  Doomed producers stream their deltas and then
/// hang without Bye, waiting for SIGKILL; survivors stream one more
/// stage, persist it, and close cleanly.
[[noreturn]] void producer_main(int index, bool doomed,
                                const std::string& socket) {
  try {
    ClientOptions copts;
    copts.socket_path = socket;
    copts.process_id = 100 + static_cast<std::uint64_t>(index);
    copts.producer_name = "soak_" + std::to_string(index);
    copts.connect_retries = 200;  // the daemon starts after the fork
    copts.retry_delay_ms = 25;
    IngestClient client(copts);
    for (int stage = 0; stage < kStagesBeforeDoom; ++stage) {
      (void)client.send_snapshot(producer_capture(index, stage));
    }
    if (doomed) {
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    const SnapshotData final_cum =
        producer_capture(index, kStagesBeforeDoom);
    (void)client.send_snapshot(final_cum);
    snapshot::atomic_write_file(final_path(index),
                                snapshot::encode_snapshot(final_cum));
    client.finish(nullptr);
    _exit(0);
  } catch (...) {
    _exit(1);
  }
}

template <typename Pred>
bool wait_for(Pred pred, int timeout_ms = 20000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(IngestSoak, DaemonAggregateEqualsOfflineMergeOfSurvivors) {
  const std::string socket =
      testing::TempDir() + "taskprofd_soak.scratch.sock";
  std::remove(socket.c_str());
  for (int i = 0; i < kProducers; ++i) std::remove(final_path(i).c_str());

  // Fork every producer BEFORE the daemon spawns its threads.
  std::vector<pid_t> pids(kProducers, -1);
  for (int i = 0; i < kProducers; ++i) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) producer_main(i, kDoomed.count(i) != 0, socket);
    pids[i] = pid;
  }

  DaemonOptions options;
  options.socket_path = socket;
  options.shards = 4;
  IngestDaemon daemon(options);
  daemon.start();

  // Every producer (doomed ones included) must have all of its
  // pre-doom deltas durably applied before the kill.
  ASSERT_TRUE(wait_for([&] {
    const DaemonStats stats = daemon.stats();
    return stats.sessions_opened >=
               static_cast<std::uint64_t>(kProducers) &&
           stats.deltas_applied >= static_cast<std::uint64_t>(
                                       kProducers * kStagesBeforeDoom);
  })) << "producers did not all stream in time";

  for (const int doomed : kDoomed) {
    ASSERT_EQ(::kill(pids[doomed], SIGKILL), 0);
  }
  for (int i = 0; i < kProducers; ++i) {
    int status = 0;
    ASSERT_EQ(::waitpid(pids[i], &status, 0), pids[i]);
    if (kDoomed.count(i) != 0) {
      EXPECT_TRUE(WIFSIGNALED(status)) << "producer " << i;
    } else {
      ASSERT_TRUE(WIFEXITED(status)) << "producer " << i;
      ASSERT_EQ(WEXITSTATUS(status), 0) << "producer " << i;
    }
  }

  const std::uint64_t survivors =
      static_cast<std::uint64_t>(kProducers - kDoomed.size());
  ASSERT_TRUE(wait_for([&] {
    const DaemonStats stats = daemon.stats();
    return stats.sessions_closed_clean == survivors &&
           stats.sessions_dropped == kDoomed.size() &&
           stats.live_sessions == 0;
  })) << "sessions did not settle";

  // Offline ground truth: merge the survivors' own final snapshots.
  std::vector<std::string> paths;
  for (int i = 0; i < kProducers; ++i) {
    if (kDoomed.count(i) == 0) paths.push_back(final_path(i));
  }
  const SnapshotData offline = snapshot::merge_snapshot_files(paths);
  const SnapshotData streamed = daemon.export_aggregate();
  daemon.stop();
  for (const std::string& path : paths) std::remove(path.c_str());

  // Exact conserved mass...
  EXPECT_EQ(total_visits(streamed.profile), total_visits(offline.profile));
  EXPECT_EQ(total_root_inclusive(streamed.profile),
            total_root_inclusive(offline.profile));
  EXPECT_EQ(streamed.profile.total_task_switches,
            offline.profile.total_task_switches);

  // ...and an order-insensitive structural match (fold order differs
  // between the daemon and the left-to-right file merge).
  const rt::TeamStats stats{};
  check::ProfileProjection a =
      check::project_profile(streamed.profile, *streamed.registry, stats);
  a.engine = "daemon";
  check::ProfileProjection b =
      check::project_profile(offline.profile, *offline.registry, stats);
  b.engine = "offline";
  std::string joined;
  for (const std::string& diff : check::diff_projections(a, b)) {
    joined += diff + "\n";
  }
  EXPECT_TRUE(joined.empty()) << joined;

  // The doomed producers' region names must not haunt the aggregate.
  for (const int doomed : kDoomed) {
    const std::string ghost = "worker_" + std::to_string(doomed);
    bool found = false;
    for (std::size_t h = 0; h < streamed.registry->size(); ++h) {
      if (streamed.registry->info(static_cast<RegionHandle>(h)).name == ghost) {
        found = true;
      }
    }
    EXPECT_FALSE(found) << ghost;
  }
}

}  // namespace
}  // namespace taskprof::ingest
