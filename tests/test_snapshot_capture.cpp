// Live mid-run capture (the seq_cst pause handshake): a background
// thread snapshots the instrumentor while the real engine races through
// fib, and every capture must be a structurally valid partial profile.
// Runs under the tsan label — the handshake has to be provably
// data-race-free, not just "usually fine".
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "bots/kernel.hpp"
#include "check/invariants.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/real_runtime.hpp"
#include "snapshot/flusher.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof {
namespace {

bots::KernelConfig test_config() {
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;
  return config;
}

TEST(SnapshotCapture, ConcurrentCapturesAreValidPartialProfiles) {
  RegionRegistry registry;
  MeasureOptions options;
  options.snapshot_every = 1;
  Instrumentor instr(registry, options);
  rt::RealRuntime runtime;
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);

  std::atomic<bool> running{true};
  std::size_t captures = 0;
  std::size_t nonempty = 0;
  std::string first_failure;
  std::thread capturer([&] {
    while (running.load(std::memory_order_acquire)) {
      const Instrumentor::CaptureResult result = instr.capture_snapshot();
      ++captures;
      if (result.profilers_captured == 0 ||
          result.profile.implicit_root == nullptr) {
        continue;
      }
      ++nonempty;
      EXPECT_TRUE(result.profile.partial_capture);
      const check::InvariantReport verdict =
          check::check_profile(result.profile, registry);
      if (!verdict.ok() && first_failure.empty()) {
        first_failure = verdict.to_string();
      }
    }
  });

  auto kernel = bots::make_kernel("fib");
  for (int i = 0; i < 20; ++i) {
    const bots::KernelResult result =
        kernel->run(runtime, registry, test_config());
    ASSERT_TRUE(result.ok);
  }
  running.store(false, std::memory_order_release);
  capturer.join();
  runtime.set_hooks(nullptr);

  EXPECT_TRUE(first_failure.empty()) << first_failure;
  EXPECT_GT(captures, 0u);
  // The workload runs long enough that at least one capture must have
  // caught live profilers.
  EXPECT_GT(nonempty, 0u);

  // The run itself is undamaged by the captures.
  instr.finalize();
  const AggregateProfile profile = instr.aggregate();
  const check::InvariantReport verdict = check::check_profile(
      profile, registry);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

TEST(SnapshotCapture, DisarmedProfilerRefusesToCapture) {
  RegionRegistry registry;
  Instrumentor instr(registry);  // snapshot_every == 0: handshake off
  rt::RealRuntime runtime;
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  auto kernel = bots::make_kernel("fib");
  ASSERT_TRUE(kernel->run(runtime, registry, test_config()).ok);
  runtime.set_hooks(nullptr);

  const Instrumentor::CaptureResult result = instr.capture_snapshot();
  EXPECT_GT(result.profilers_live, 0u);
  EXPECT_EQ(result.profilers_captured, 0u);
}

TEST(SnapshotCapture, FlusherWritesLoadableFileDuringRun) {
  const std::string path = testing::TempDir() + "capture_flusher.tpsnap";
  std::remove(path.c_str());

  RegionRegistry registry;
  MeasureOptions options;
  options.snapshot_every = 1;
  Instrumentor instr(registry, options);
  rt::RealRuntime runtime;
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);

  snapshot::FlusherOptions flush_options;
  flush_options.path = path;
  flush_options.interval = 1'000'000;  // 1 ms
  snapshot::SnapshotFlusher flusher(instr, registry, flush_options);
  flusher.start();

  auto kernel = bots::make_kernel("fib");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kernel->run(runtime, registry, test_config()).ok);
  }
  runtime.set_hooks(nullptr);
  flusher.stop();
  EXPECT_GE(flusher.flush_count(), 1u) << flusher.last_error();

  instr.finalize();
  ASSERT_TRUE(flusher.flush_final()) << flusher.last_error();

  // The final flush replaced the partial snapshot with the clean full
  // profile; a later flush_now must not overwrite it.
  EXPECT_FALSE(flusher.flush_now());
  const snapshot::SnapshotData data = snapshot::read_snapshot_file(path);
  EXPECT_FALSE(data.profile.partial_capture);
  const check::InvariantReport verdict =
      check::check_profile(data.profile, *data.registry);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace taskprof
