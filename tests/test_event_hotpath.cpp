// Tests of the event-engine fast paths: the hot_child last-hit cache,
// the promoted open-addressed ChildIndex on wide-fan-out nodes, the
// iterative O(1)-space merge/release walks, and the leaf fast path in
// merge_and_recycle.  The through-line: every accelerated path must be
// profile-identical to the plain one, so most tests here run the same
// scenario with acceleration on and off and demand equal results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "common/clock.hpp"
#include "measure/aggregate.hpp"
#include "measure/task_profiler.hpp"
#include "profile/calltree.hpp"
#include "profile/region.hpp"
#include "report/text_report.hpp"

namespace taskprof {
namespace {

// ---- ChildIndex promotion on wide fan-out ---------------------------------

class ChildIndexTest : public ::testing::Test {
 protected:
  NodePool pool_;
};

TEST_F(ChildIndexTest, PromotionAtFanoutThreshold) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  for (std::size_t i = 0; i < kChildIndexFanout - 1; ++i) {
    find_or_create_child(pool_, root, static_cast<RegionHandle>(i + 1));
    EXPECT_EQ(root->child_index, nullptr) << "premature promotion at " << i;
  }
  find_or_create_child(pool_, root,
                       static_cast<RegionHandle>(kChildIndexFanout));
  ASSERT_NE(root->child_index, nullptr);
  EXPECT_EQ(root->child_index->size(), kChildIndexFanout);
}

TEST_F(ChildIndexTest, IndexHitsAndMissesMatchLinearScan) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  // Parameter-heavy fan-out, as per-depth nqueens produces: one region,
  // hundreds of parameter values, plus stub/non-stub twins.
  std::vector<CallNode*> made;
  for (std::int64_t p = 0; p < 300; ++p) {
    made.push_back(find_or_create_child(pool_, root, 7, p, false));
    made.push_back(find_or_create_child(pool_, root, 7, p, true));
  }
  ASSERT_NE(root->child_index, nullptr);
  for (std::int64_t p = 0; p < 300; ++p) {
    EXPECT_EQ(find_child(root, 7, p, false), made[2 * p]);
    EXPECT_EQ(find_child(root, 7, p, true), made[2 * p + 1]);
  }
  EXPECT_EQ(find_child(root, 7, 300, false), nullptr);
  EXPECT_EQ(find_child(root, 8, 0, false), nullptr);
  EXPECT_EQ(find_child(root, 7, 0, true), made[1]);
}

TEST_F(ChildIndexTest, FirstVisitSiblingOrderSurvivesPromotion) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  constexpr int kChildren = 64;
  for (int i = 0; i < kChildren; ++i) {
    find_or_create_child(pool_, root, static_cast<RegionHandle>(i + 1));
  }
  // Re-find in scrambled order: lookups must not reorder the list.
  for (int i = kChildren - 1; i >= 0; i -= 3) {
    find_or_create_child(pool_, root, static_cast<RegionHandle>(i + 1));
  }
  int expected = 1;
  for (const CallNode* c = root->first_child; c != nullptr;
       c = c->next_sibling) {
    EXPECT_EQ(c->region, static_cast<RegionHandle>(expected++));
  }
  EXPECT_EQ(expected, kChildren + 1);
  EXPECT_EQ(root->child_count(), static_cast<std::size_t>(kChildren));
}

TEST_F(ChildIndexTest, HotChildShortCircuitsRepeatLookups) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* a = find_or_create_child(pool_, root, 1);
  EXPECT_EQ(root->hot_child, a);
  CallNode* b = find_or_create_child(pool_, root, 2);
  EXPECT_EQ(root->hot_child, b);
  EXPECT_EQ(find_or_create_child(pool_, root, 2), b);
  EXPECT_EQ(find_or_create_child(pool_, root, 1), a);
  EXPECT_EQ(root->hot_child, a);
}

TEST_F(ChildIndexTest, AccelerationOffNeverPromotes) {
  pool_.set_lookup_acceleration(false);
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  std::vector<CallNode*> made;
  for (int i = 0; i < 100; ++i) {
    made.push_back(
        find_or_create_child(pool_, root, static_cast<RegionHandle>(i + 1)));
  }
  EXPECT_EQ(root->child_index, nullptr);
  EXPECT_EQ(root->hot_child, nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(find_or_create_child(pool_, root,
                                   static_cast<RegionHandle>(i + 1)),
              made[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(pool_.allocated(), 101u);
}

TEST_F(ChildIndexTest, AllocateKeepsPromotedIndexComplete) {
  // Children added via the raw allocate path (not find_or_create) must
  // still land in an already-promoted index.
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  for (std::size_t i = 0; i < kChildIndexFanout; ++i) {
    find_or_create_child(pool_, root, static_cast<RegionHandle>(i + 1));
  }
  ASSERT_NE(root->child_index, nullptr);
  CallNode* direct = pool_.allocate(99, kNoParameter, false, root);
  EXPECT_EQ(root->child_index->find(99, kNoParameter, false), direct);
  EXPECT_EQ(root->child_index->size(), root->child_count());
}

TEST_F(ChildIndexTest, UnlinkRebuildsOrDropsIndex) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  std::vector<CallNode*> children;
  for (std::size_t i = 0; i < kChildIndexFanout + 2; ++i) {
    children.push_back(
        find_or_create_child(pool_, root, static_cast<RegionHandle>(i + 1)));
  }
  ASSERT_NE(root->child_index, nullptr);

  // Still at/above the threshold after one release: index is rebuilt and
  // must not resolve the removed child.
  pool_.release_subtree(children[3]);
  ASSERT_NE(root->child_index, nullptr);
  EXPECT_EQ(find_child(root, 4), nullptr);
  EXPECT_EQ(find_child(root, 5), children[4]);
  EXPECT_EQ(root->child_index->size(), root->child_count());

  // Dropping below the threshold demotes back to the plain list.
  while (root->child_count() >= kChildIndexFanout) {
    pool_.release_subtree(root->first_child);
  }
  EXPECT_EQ(root->child_index, nullptr);
  EXPECT_EQ(find_child(root, static_cast<RegionHandle>(kChildIndexFanout + 2)),
            children.back());
}

// ---- Iterative walks on pathologically deep trees -------------------------
//
// These trees are deep enough that the old recursive merge (and the
// per-node std::string recursion in CSV rendering) overflowed the C++
// stack; passing at all is the assertion.

constexpr int kDeepChain = 200'000;

TEST(DeepTreeTest, IterativeMergeAndReleaseSurviveDeepChains) {
  NodePool src_pool;
  CallNode* src = src_pool.allocate(0, kNoParameter, false, nullptr);
  CallNode* tip = src;
  for (int i = 1; i < kDeepChain; ++i) {
    tip = src_pool.allocate(static_cast<RegionHandle>(i % 17), i % 5, false,
                            tip);
    tip->visits = 1;
    tip->inclusive = 1;
    tip->visit_stats.add(1);
  }
  src->visits = 1;
  src->inclusive = kDeepChain;
  src->visit_stats.add(kDeepChain);

  NodePool dst_pool;
  CallNode* dst = dst_pool.allocate(0, kNoParameter, false, nullptr);
  merge_subtree(dst_pool, dst, src);
  EXPECT_EQ(subtree_size(dst), static_cast<std::size_t>(kDeepChain));
  // Merging the same chain again folds onto the existing nodes.
  merge_subtree(dst_pool, dst, src);
  EXPECT_EQ(subtree_size(dst), static_cast<std::size_t>(kDeepChain));
  EXPECT_EQ(dst->visits, 2u);

  src_pool.release_subtree(src);
  EXPECT_EQ(src_pool.free_count(), static_cast<std::size_t>(kDeepChain));
  dst_pool.release_subtree(dst);
  EXPECT_EQ(dst_pool.free_count(), static_cast<std::size_t>(kDeepChain));
}

TEST(DeepTreeTest, ReportsRenderDeepChainsIteratively) {
  RegionRegistry registry;
  const RegionHandle implicit =
      registry.register_region("implicit task", RegionType::kImplicitTask);
  const RegionHandle fn =
      registry.register_region("f", RegionType::kFunction);

  ManualClock clock;
  ThreadTaskProfiler prof(0, clock, implicit);
  for (int i = 0; i < kDeepChain; ++i) {
    prof.enter(fn);
    clock.advance(1);
  }
  for (int i = 0; i < kDeepChain; ++i) prof.exit(fn);
  prof.finalize();

  const ThreadProfileView view = prof.view();
  AggregateProfile profile = aggregate_profiles({&view, 1});
  // Depth-capped text render: the traversal still walks all 200k nodes
  // (the recursive renderer overflowed the stack here), but the emitted
  // text stays small.  Uncapped renders of a chain this deep are
  // inherently quadratic in output size (indentation / full CSV paths),
  // so they are exercised on a shallower tree below.
  ReportOptions capped;
  capped.max_depth = 10;
  const std::string text = render_tree(profile.implicit_root, registry,
                                       capped);
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 11);
}

TEST(DeepTreeTest, CsvPathsStayCorrectOnDeepChains) {
  // Deep enough to break per-node recursion with string frames, shallow
  // enough that the (inherently quadratic) path column stays in bounds.
  constexpr int kCsvChain = 4'000;
  RegionRegistry registry;
  const RegionHandle implicit =
      registry.register_region("implicit task", RegionType::kImplicitTask);
  const RegionHandle fn =
      registry.register_region("f", RegionType::kFunction);

  ManualClock clock;
  ThreadTaskProfiler prof(0, clock, implicit);
  for (int i = 0; i < kCsvChain; ++i) {
    prof.enter(fn);
    clock.advance(1);
  }
  for (int i = 0; i < kCsvChain; ++i) prof.exit(fn);
  prof.finalize();

  const ThreadProfileView view = prof.view();
  AggregateProfile profile = aggregate_profiles({&view, 1});
  const std::string csv = render_csv(profile, registry);
  // Header + one row per node.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<std::ptrdiff_t>(kCsvChain) + 2);
  // The deepest row's path must contain every ancestor.
  const std::string deepest = "implicit task" + [] {
    std::string tail;
    for (int i = 0; i < kCsvChain; ++i) tail += "/f";
    return tail;
  }();
  EXPECT_NE(csv.find(deepest), std::string::npos);
}

// ---- Fast-path vs. general-path profile equivalence -----------------------

class HotpathEquivalenceTest : public ::testing::Test {
 protected:
  std::unique_ptr<ThreadTaskProfiler> make(MeasureOptions options) {
    clock_.set(0);
    return std::make_unique<ThreadTaskProfiler>(0, clock_, implicit_,
                                                options);
  }

  /// Deterministic mixed event stream: leaf-only tasks (the leaf fast
  /// path's case), tasks with nested enters and a parameter fan-out wide
  /// enough to promote indexes, interleaved suspension, and a taskwait.
  void run_stream(ThreadTaskProfiler& prof) {
    clock_.set(0);
    prof.enter(main_);
    clock_.advance(1);
    prof.enter(barrier_);
    TaskInstanceId next_id = 1;
    for (std::int64_t round = 0; round < 40; ++round) {
      // Leaf task: single-node instance tree.
      const TaskInstanceId leaf = next_id++;
      clock_.advance(1);
      prof.task_begin(task_a_, leaf, round % 12);
      clock_.advance(2 + round % 3);
      prof.task_end(leaf);
      // Structured task: nested regions, one suspension in the middle.
      const TaskInstanceId big = next_id++;
      clock_.advance(1);
      prof.task_begin(task_b_, big, round % 7);
      prof.enter(foo_);
      clock_.advance(3);
      const TaskInstanceId nested = next_id++;
      prof.task_begin(task_a_, nested, round % 12);  // suspends `big`
      clock_.advance(2);
      prof.task_end(nested);  // back on the implicit task
      clock_.advance(1);
      prof.task_switch(big);  // resume the suspended instance
      clock_.advance(1);
      prof.exit(foo_);
      clock_.advance(1);
      prof.task_end(big);
    }
    clock_.advance(1);
    prof.exit(barrier_);
    prof.enter(taskwait_);
    clock_.advance(2);
    prof.exit(taskwait_);
    clock_.advance(1);
    prof.exit(main_);
    prof.finalize();
  }

  std::string profile_csv(ThreadTaskProfiler& prof, MeasureOptions options) {
    const ThreadProfileView view = prof.view();
    AggregateProfile profile = aggregate_profiles({&view, 1});
    const check::InvariantReport report =
        check::check_profile(profile, registry_, nullptr, nullptr, options);
    EXPECT_TRUE(report.violations.empty()) << report.to_string();
    return render_csv(profile, registry_);
  }

  RegionRegistry registry_;
  ManualClock clock_;
  RegionHandle implicit_ =
      registry_.register_region("implicit task", RegionType::kImplicitTask);
  RegionHandle main_ = registry_.register_region("main", RegionType::kFunction);
  RegionHandle foo_ = registry_.register_region("foo", RegionType::kFunction);
  RegionHandle barrier_ = registry_.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  RegionHandle taskwait_ =
      registry_.register_region("taskwait", RegionType::kTaskwait);
  RegionHandle task_a_ = registry_.register_region("taskA", RegionType::kTask);
  RegionHandle task_b_ = registry_.register_region("taskB", RegionType::kTask);
};

TEST_F(HotpathEquivalenceTest, FastPathsAreProfileIdenticalToGeneralPaths) {
  MeasureOptions fast;  // defaults: all acceleration on
  MeasureOptions general;
  general.child_lookup_acceleration = false;
  general.leaf_fast_path = false;

  auto fast_prof = make(fast);
  run_stream(*fast_prof);
  const std::string fast_csv = profile_csv(*fast_prof, fast);

  auto general_prof = make(general);
  run_stream(*general_prof);
  const std::string general_csv = profile_csv(*general_prof, general);

  EXPECT_EQ(fast_csv, general_csv);
  EXPECT_FALSE(fast_csv.empty());
}

TEST_F(HotpathEquivalenceTest, LeafFastPathAloneMatchesForcedGeneralMerge) {
  MeasureOptions leaf_on;
  leaf_on.child_lookup_acceleration = false;  // isolate the merge fast path
  MeasureOptions leaf_off = leaf_on;
  leaf_off.leaf_fast_path = false;

  auto on_prof = make(leaf_on);
  run_stream(*on_prof);
  auto off_prof = make(leaf_off);
  run_stream(*off_prof);
  EXPECT_EQ(profile_csv(*on_prof, leaf_on), profile_csv(*off_prof, leaf_off));
}

TEST_F(HotpathEquivalenceTest, ManyParameterRootsUseIndexedMergedLookup) {
  // One merged root per parameter value: enough roots to activate the
  // merged-root index, interleaved so the last-hit pointer keeps missing.
  MeasureOptions fast;
  auto prof = make(fast);
  clock_.set(0);
  prof->enter(barrier_);
  TaskInstanceId id = 1;
  for (int round = 0; round < 6; ++round) {
    for (std::int64_t p = 0; p < 40; ++p) {
      clock_.advance(1);
      prof->task_begin(task_a_, id, p);
      clock_.advance(1);
      prof->task_end(id);
      ++id;
    }
  }
  clock_.advance(1);
  prof->exit(barrier_);
  prof->finalize();

  const ThreadProfileView view = prof->view();
  EXPECT_EQ(view.task_roots.size(), 40u);
  for (const CallNode* root : view.task_roots) {
    EXPECT_EQ(root->visits, 6u);
  }
  AggregateProfile profile = aggregate_profiles({&view, 1});
  const check::InvariantReport report =
      check::check_profile(profile, registry_, nullptr, nullptr, fast);
  EXPECT_TRUE(report.violations.empty()) << report.to_string();
}

}  // namespace
}  // namespace taskprof
