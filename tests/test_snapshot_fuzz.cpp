// Loader robustness: the .tpsnap reader must reject every truncation,
// seeded bit flip, and version bump with a typed SnapshotError — never
// crash, never assert, never return a half-built profile.  Also replays
// the committed corpus under tests/corpus/snapshot/ ("ok_" files must
// decode and re-encode byte-identically, "bad_" files must be rejected),
// so a format change that breaks old files fails loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "common/rng.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"
#include "snapshot/format.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof {
namespace {

/// A valid snapshot exercising all four sections (meta, regions, trees,
/// telemetry).
std::vector<std::uint8_t> valid_snapshot_bytes() {
  RegionRegistry registry;
  rt::SimRuntime runtime;
  Instrumentor instr(registry);
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  auto kernel = bots::make_kernel("fib");
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;
  (void)kernel->run(runtime, registry, config);
  runtime.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile profile = instr.aggregate();

  telemetry::Registry telem;
  telem.prepare(2);
  telem.add(0, telemetry::Counter::kTasksCreated, 5);
  telem.gauge_max(1, telemetry::Gauge::kDequeDepth, 3);
  const telemetry::Snapshot snap = telem.snapshot();

  snapshot::SnapshotMeta meta;
  meta.flush_seq = 1;
  meta.process_id = 1234;
  return snapshot::encode_snapshot(profile, registry, meta, &snap);
}

/// Decode that may legally succeed (a flip can land in a skippable
/// place); anything but success or SnapshotError fails the test.
bool decodes(const std::vector<std::uint8_t>& bytes) {
  try {
    const snapshot::SnapshotData data =
        snapshot::decode_snapshot(bytes, "<fuzz>");
    // A successful decode must still be re-encodable without incident.
    (void)snapshot::encode_snapshot(data);
    return true;
  } catch (const snapshot::SnapshotError&) {
    return false;
  }
}

snapshot::Errc reject_code(const std::vector<std::uint8_t>& bytes) {
  try {
    (void)snapshot::decode_snapshot(bytes, "<fuzz>");
  } catch (const snapshot::SnapshotError& error) {
    return error.code();
  }
  ADD_FAILURE() << "decode unexpectedly succeeded";
  return snapshot::Errc::kIo;
}

TEST(SnapshotFuzz, EveryTruncationIsRejectedTyped) {
  const std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  ASSERT_GT(bytes.size(), 32u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(len));
    try {
      (void)snapshot::decode_snapshot(cut, "<truncated>");
      FAIL() << "prefix of " << len << " bytes accepted";
    } catch (const snapshot::SnapshotError& error) {
      // Short prefixes die on the magic or the header; longer ones on a
      // section length.  All are typed; none may be kIo (that class is
      // reserved for the filesystem).
      EXPECT_NE(error.code(), snapshot::Errc::kIo) << "len " << len;
    }
  }
}

TEST(SnapshotFuzz, SeededBitFlipsNeverCrashTheLoader) {
  const std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  Xoshiro256 rng(0xF1A5'F1A5'F1A5ull);
  std::size_t rejected = 0;
  constexpr int kFlips = 4000;
  for (int i = 0; i < kFlips; ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t byte = rng.next_below(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    if (!decodes(mutated)) ++rejected;
  }
  // Every payload byte is CRC-covered; almost all flips must be caught
  // (the rare survivor flips a skippable section id or the section
  // count's redundant encoding).
  EXPECT_GT(rejected, kFlips * 9 / 10);
}

TEST(SnapshotFuzz, MultiBitFlipsNeverCrashTheLoader) {
  const std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  Xoshiro256 rng(0xBADC'0FFE'E000ull);
  for (int i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t flips = 2 + rng.next_below(16);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t byte = rng.next_below(mutated.size());
      mutated[byte] ^= static_cast<std::uint8_t>(rng.next_below(256));
    }
    (void)decodes(mutated);  // must not crash either way
  }
}

TEST(SnapshotFuzz, VersionBumpIsFutureVersion) {
  std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  // The u32 version sits right after the 8-byte magic, little-endian.
  bytes[8] = static_cast<std::uint8_t>(snapshot::kFormatVersion + 1);
  EXPECT_EQ(reject_code(bytes), snapshot::Errc::kFutureVersion);
  bytes[8] = 0xFF;
  bytes[9] = 0xFF;
  EXPECT_EQ(reject_code(bytes), snapshot::Errc::kFutureVersion);
  // Version 0 was never issued: grammar violation, not a future file.
  bytes[8] = 0;
  bytes[9] = 0;
  EXPECT_EQ(reject_code(bytes), snapshot::Errc::kMalformed);
}

TEST(SnapshotFuzz, BadMagicIsTyped) {
  std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  bytes[0] = 'X';
  EXPECT_EQ(reject_code(bytes), snapshot::Errc::kBadMagic);
}

TEST(SnapshotFuzz, PayloadCorruptionIsBadCrc) {
  std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  // First section payload starts after the 16-byte file header and the
  // 16-byte section header.
  ASSERT_GT(bytes.size(), 40u);
  bytes[33] ^= 0x40;
  EXPECT_EQ(reject_code(bytes), snapshot::Errc::kBadCrc);
}

TEST(SnapshotFuzz, TrailingDataIsTyped) {
  std::vector<std::uint8_t> bytes = valid_snapshot_bytes();
  bytes.push_back(0);
  EXPECT_EQ(reject_code(bytes), snapshot::Errc::kTrailingData);
}

TEST(SnapshotFuzz, CommittedCorpusReplays) {
  const std::filesystem::path dir = TASKPROF_SNAPSHOT_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t ok_files = 0;
  std::size_t bad_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".tpsnap") continue;
    const std::string name = entry.path().filename().string();
    SCOPED_TRACE(name);
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << name;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (name.rfind("ok_", 0) == 0) {
      ++ok_files;
      const snapshot::SnapshotData data =
          snapshot::decode_snapshot(bytes, name);
      // Format-stability golden: today's encoder must reproduce the
      // committed bytes exactly; an encoding change requires a version
      // bump and fresh goldens.
      EXPECT_EQ(snapshot::encode_snapshot(data), bytes);
    } else if (name.rfind("bad_", 0) == 0) {
      ++bad_files;
      EXPECT_THROW((void)snapshot::decode_snapshot(bytes, name),
                   snapshot::SnapshotError);
    } else {
      ADD_FAILURE() << "corpus file " << name
                    << " must start with ok_ or bad_";
    }
  }
  EXPECT_GE(ok_files, 1u);
  EXPECT_GE(bad_files, 3u);
}

}  // namespace
}  // namespace taskprof
