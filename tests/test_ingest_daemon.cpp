// End-to-end daemon tests over a real Unix-domain socket: a producer's
// streamed deltas reconstruct its cumulative byte-for-byte, multiple
// producers merge exactly like the offline `snapshot::merge`, reports
// are served over the wire, reconnects rebase into fresh sessions, and
// a memory budget evicts without losing mass.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ingest/client.hpp"
#include "ingest/daemon.hpp"
#include "ingest/delta.hpp"
#include "snapshot/merge.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {
namespace {

using snapshot::SnapshotData;

std::string socket_path(const char* name) {
  return testing::TempDir() + "taskprofd_" + name + ".scratch.sock";
}

/// Two-stage synthetic producer (same shape as the delta tests):
/// stage 1 strictly grows stage 0 and adds a new region/subtree.
SnapshotData capture(int stage, std::uint64_t process_id) {
  SnapshotData data;
  data.registry = std::make_unique<RegionRegistry>();
  const RegionHandle implicit = data.registry->register_region(
      "implicit task", RegionType::kImplicitTask);
  const RegionHandle work =
      data.registry->register_region("work", RegionType::kFunction);
  AggregateProfile& p = data.profile;
  p.thread_count = 2;
  p.max_concurrent_per_thread = {1, 1};
  p.max_concurrent_any_thread = stage == 0 ? 1 : 2;
  p.total_task_switches = stage == 0 ? 3 : 9;
  p.implicit_root = p.pool.allocate(implicit, kNoParameter, false, nullptr);
  p.implicit_root->visits = stage == 0 ? 2 : 5;
  p.implicit_root->inclusive = stage == 0 ? 100 : 260;
  p.implicit_root->visit_stats.add(40);
  p.implicit_root->visit_stats.add(60);
  if (stage > 0) {
    p.implicit_root->visit_stats.add(30);
    p.implicit_root->visit_stats.add(60);
    p.implicit_root->visit_stats.add(70);
  }
  // A subtree only stage 0 touches: the later delta omits it entirely,
  // so under a memory budget it goes cold and is evicted.
  const RegionHandle startup =
      data.registry->register_region("startup_phase", RegionType::kFunction);
  CallNode* cold =
      p.pool.allocate(startup, kNoParameter, false, p.implicit_root);
  cold->visits = 2;
  cold->inclusive = 8;
  cold->visit_stats.add(4);
  cold->visit_stats.add(4);
  CallNode* worker =
      p.pool.allocate(work, kNoParameter, false, p.implicit_root);
  worker->visits = 1;
  worker->inclusive = 20;
  worker->visit_stats.add(20);
  if (stage > 0) {
    const RegionHandle late =
        data.registry->register_region("late_phase", RegionType::kFunction);
    CallNode* grand = p.pool.allocate(late, kNoParameter, false, worker);
    grand->visits = 3;
    grand->inclusive = 12;
    for (int i = 0; i < 3; ++i) grand->visit_stats.add(4);
  }
  data.meta.flush_seq = stage + 1;
  data.meta.process_id = process_id;
  return data;
}

/// Spin until `pred` holds (daemon-side events are asynchronous).
template <typename Pred>
bool wait_for(Pred pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(IngestDaemon, SingleProducerStreamsToByteIdenticalAggregate) {
  DaemonOptions options;
  options.socket_path = socket_path("single");
  options.shards = 1;
  IngestDaemon daemon(options);
  daemon.start();

  const SnapshotData early = capture(0, 7);
  const SnapshotData late = capture(1, 7);
  {
    ClientOptions copts;
    copts.socket_path = options.socket_path;
    copts.process_id = 7;
    copts.producer_name = "single";
    IngestClient client(copts);
    const SendResult first = client.send_snapshot(early);
    EXPECT_TRUE(first.rebased);  // first flush ships the full cumulative
    const SendResult second = client.send_snapshot(late);
    EXPECT_FALSE(second.rebased);
    EXPECT_GT(second.changed_nodes, 0u);
    client.finish(nullptr);
    EXPECT_EQ(client.total_sends(), 2u);
    EXPECT_EQ(client.total_rebases(), 1u);
  }
  ASSERT_TRUE(wait_for([&] { return daemon.stats().sessions_closed_clean == 1; }));

  // The daemon's merged view IS the producer's final cumulative.
  const SnapshotData exported = daemon.export_aggregate();
  EXPECT_EQ(snapshot::encode_snapshot(exported),
            snapshot::encode_snapshot(late));

  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.deltas_applied, 2u);
  EXPECT_EQ(stats.rebases, 1u);
  EXPECT_EQ(stats.visits_ingested, total_visits(late.profile));
  EXPECT_EQ(stats.live_sessions, 0u);
  daemon.stop();
  EXPECT_FALSE(daemon.running());
}

TEST(IngestDaemon, TwoProducersMatchTheOfflineMerge) {
  DaemonOptions options;
  options.socket_path = socket_path("pair");
  options.shards = 1;  // one fold order, comparable to the offline merge
  IngestDaemon daemon(options);
  daemon.start();

  const SnapshotData a = capture(1, 1);
  const SnapshotData b = capture(1, 2);
  for (const SnapshotData* snap : {&a, &b}) {
    ClientOptions copts;
    copts.socket_path = options.socket_path;
    copts.process_id = snap->meta.process_id;
    IngestClient client(copts);
    (void)client.send_snapshot(*snap);
    client.finish(nullptr);
  }
  ASSERT_TRUE(wait_for([&] { return daemon.stats().sessions_closed_clean == 2; }));

  SnapshotData offline = clone_snapshot(a);
  snapshot::merge_snapshot_into(offline, b);
  EXPECT_EQ(snapshot::encode_snapshot(daemon.export_aggregate()),
            snapshot::encode_snapshot(offline));
  daemon.stop();
}

TEST(IngestDaemon, ExportIncludesLiveSessions) {
  DaemonOptions options;
  options.socket_path = socket_path("live");
  options.shards = 2;
  IngestDaemon daemon(options);
  daemon.start();

  const SnapshotData cum = capture(0, 3);
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.process_id = 3;
  IngestClient client(copts);
  (void)client.send_snapshot(cum);  // acked => merged; session still open

  EXPECT_EQ(snapshot::encode_snapshot(daemon.export_aggregate()),
            snapshot::encode_snapshot(cum));
  EXPECT_EQ(daemon.stats().live_sessions, 1u);
  client.finish(nullptr);
  daemon.stop();
}

TEST(IngestDaemon, ReportsAreServedOverTheWire) {
  DaemonOptions options;
  options.socket_path = socket_path("report");
  IngestDaemon daemon(options);
  daemon.start();

  // Before any data: text report says so rather than erroring.
  {
    const auto body = query_report(options.socket_path, ReportKind::kText);
    const std::string text(body.begin(), body.end());
    EXPECT_NE(text.find("no data ingested yet"), std::string::npos);
  }

  const SnapshotData cum = capture(1, 9);
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.process_id = 9;
  IngestClient client(copts);
  (void)client.send_snapshot(cum);
  client.finish(nullptr);
  ASSERT_TRUE(wait_for([&] { return daemon.stats().sessions_closed_clean == 1; }));

  {
    const auto body = query_report(options.socket_path, ReportKind::kText);
    const std::string text(body.begin(), body.end());
    EXPECT_NE(text.find("late_phase"), std::string::npos) << text;
  }
  {
    const auto body = query_report(options.socket_path, ReportKind::kJson);
    const std::string json(body.begin(), body.end());
    EXPECT_EQ(json.front(), '{');
  }
  {
    const auto body = query_report(options.socket_path, ReportKind::kStats);
    const std::string json(body.begin(), body.end());
    EXPECT_NE(json.find("\"deltas_applied\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  }
  {
    // kSnapshot over the wire == the in-process export.
    const auto body = query_report(options.socket_path, ReportKind::kSnapshot);
    EXPECT_EQ(body, snapshot::encode_snapshot(daemon.export_aggregate()));
    const SnapshotData decoded = snapshot::decode_snapshot(body, "wire");
    EXPECT_EQ(total_visits(decoded.profile), total_visits(cum.profile));
  }
  EXPECT_GE(daemon.stats().reports_served, 5u);
  daemon.stop();
}

TEST(IngestDaemon, ReconnectRebasesIntoAFreshSession) {
  DaemonOptions options;
  options.socket_path = socket_path("reconnect");
  options.shards = 1;
  IngestDaemon daemon(options);
  daemon.start();

  const SnapshotData early = capture(0, 5);
  const SnapshotData late = capture(1, 5);
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.process_id = 5;
  IngestClient client(copts);
  (void)client.send_snapshot(early);
  client.close();  // simulate a producer-side transport loss

  // The dirty disconnect drops session 1's contribution...
  ASSERT_TRUE(wait_for([&] { return daemon.stats().sessions_dropped == 1; }));

  // ...and the next send reconnects and rebases the full cumulative, so
  // nothing is double-counted and nothing is lost.
  const SendResult result = client.send_snapshot(late);
  EXPECT_TRUE(result.rebased);
  EXPECT_TRUE(result.reconnected);
  client.finish(nullptr);
  ASSERT_TRUE(wait_for([&] { return daemon.stats().sessions_closed_clean == 1; }));

  EXPECT_EQ(snapshot::encode_snapshot(daemon.export_aggregate()),
            snapshot::encode_snapshot(late));
  const DaemonStats stats = daemon.stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.rebases, 2u);
  daemon.stop();
}

TEST(IngestDaemon, KeepPartialFoldsDirtySessions) {
  DaemonOptions options;
  options.socket_path = socket_path("partial");
  options.shards = 1;
  options.keep_partial_sessions = true;
  IngestDaemon daemon(options);
  daemon.start();

  const SnapshotData cum = capture(0, 6);
  {
    ClientOptions copts;
    copts.socket_path = options.socket_path;
    copts.process_id = 6;
    IngestClient client(copts);
    (void)client.send_snapshot(cum);
  }  // destructor closes without Bye: dirty disconnect
  ASSERT_TRUE(wait_for([&] { return daemon.stats().sessions_dropped == 1; }));

  // Policy says keep: the acked prefix still counts.
  EXPECT_EQ(snapshot::encode_snapshot(daemon.export_aggregate()),
            snapshot::encode_snapshot(cum));
  daemon.stop();
}

TEST(IngestDaemon, MemoryBudgetEvictsWithoutLosingMass) {
  DaemonOptions options;
  options.socket_path = socket_path("evict");
  options.shards = 1;
  options.memory_budget_bytes = 1;  // evict after every applied delta
  IngestDaemon daemon(options);
  daemon.start();

  const SnapshotData early = capture(0, 8);
  const SnapshotData late = capture(1, 8);
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.process_id = 8;
  IngestClient client(copts);
  (void)client.send_snapshot(early);
  (void)client.send_snapshot(late);
  client.finish(nullptr);
  ASSERT_TRUE(wait_for([&] { return daemon.stats().sessions_closed_clean == 1; }));

  const DaemonStats stats = daemon.stats();
  EXPECT_GT(stats.evicted_subtrees, 0u);
  EXPECT_GT(stats.evicted_visits, 0u);

  const SnapshotData exported = daemon.export_aggregate();
  EXPECT_EQ(total_visits(exported.profile), total_visits(late.profile));
  EXPECT_EQ(total_root_inclusive(exported.profile),
            total_root_inclusive(late.profile));
  daemon.stop();
}

TEST(IngestDaemon, StopIsIdempotentAndRestartable) {
  DaemonOptions options;
  options.socket_path = socket_path("restart");
  IngestDaemon daemon(options);
  daemon.start();
  daemon.stop();
  daemon.stop();
  EXPECT_FALSE(daemon.running());

  IngestDaemon second(options);  // stale socket file must not block bind
  second.start();
  EXPECT_TRUE(second.running());
  second.stop();
}

}  // namespace
}  // namespace taskprof::ingest
