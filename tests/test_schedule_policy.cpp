// Seeded schedule perturbation (rt/schedule_policy.hpp): stream
// determinism, detached neutrality, and the end-to-end guarantees the
// fuzzing harness rests on — perturbed engines still compute the right
// answer, and the sim engine replays a seed tick-for-tick.
#include "rt/schedule_policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "profile/region.hpp"
#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

TEST(ScheduleStream, DetachedStreamIsNeutral) {
  rt::ScheduleStream stream;
  EXPECT_FALSE(stream.attached());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(stream.yield_before(rt::SchedulePoint::kTaskCreate));
    EXPECT_FALSE(stream.yield_before(rt::SchedulePoint::kBarrier));
    EXPECT_FALSE(stream.steal_first());
    EXPECT_EQ(stream.victim_rotation(8), 0u);
    EXPECT_EQ(stream.pick(17), 0u);
    EXPECT_EQ(stream.jitter(1000), 0);
  }
}

TEST(ScheduleStream, SameSeedAndThreadGiveIdenticalDecisions) {
  const rt::SchedulePolicy policy(0xfeedfaceULL);
  for (ThreadId tid : {0u, 1u, 7u}) {
    rt::ScheduleStream a = policy.stream(tid);
    rt::ScheduleStream b = policy.stream(tid);
    ASSERT_TRUE(a.attached());
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(a.pick(1000), b.pick(1000)) << "tid " << tid << " draw " << i;
    }
  }
}

TEST(ScheduleStream, DistinctThreadsGetDistinctStreams) {
  const rt::SchedulePolicy policy(42);
  rt::ScheduleStream a = policy.stream(0);
  rt::ScheduleStream b = policy.stream(1);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.pick(1u << 30) != b.pick(1u << 30)) ++differing;
  }
  EXPECT_GT(differing, 32);
}

TEST(ScheduleStream, VictimRotationStaysInRange) {
  const rt::SchedulePolicy policy(7);
  for (std::uint32_t nthreads = 1; nthreads <= 16; ++nthreads) {
    rt::ScheduleStream stream = policy.stream(0);
    for (int i = 0; i < 100; ++i) {
      const std::uint32_t rotation = stream.victim_rotation(nthreads);
      if (nthreads <= 2) {
        EXPECT_EQ(rotation, 0u);
      } else {
        EXPECT_LT(rotation, nthreads - 1);
      }
    }
  }
}

TEST(ScheduleStream, AttachedStreamActuallyPerturbs) {
  const rt::SchedulePolicy policy(0xabcdef);
  rt::ScheduleStream stream = policy.stream(0);
  int yields = 0;
  int steal_firsts = 0;
  for (int i = 0; i < 400; ++i) {
    if (stream.yield_before(rt::SchedulePoint::kAcquire)) ++yields;
    if (stream.steal_first()) ++steal_firsts;
  }
  // ~1/8 and ~1/4 rates; just assert they are neither never nor always.
  EXPECT_GT(yields, 10);
  EXPECT_LT(yields, 200);
  EXPECT_GT(steal_firsts, 40);
  EXPECT_LT(steal_firsts, 300);
}

// The real engine must stay *correct* under any seed: task counts and the
// computed result are schedule-independent.
class RealPerturbedTest : public ::testing::TestWithParam<rt::SchedulerKind> {
};

TEST_P(RealPerturbedTest, FibCountsExactUnderPerturbation) {
  RegionRegistry registry;
  const RegionHandle task =
      registry.register_region("t", RegionType::kTask);
  std::function<void(rt::TaskContext&, int, long*)> fib =
      [&](rt::TaskContext& ctx, int n, long* out) {
        if (n < 2) {
          *out = n;
          return;
        }
        long a = 0;
        long b = 0;
        rt::TaskAttrs attrs;
        attrs.region = task;
        ctx.create_task(
            [&fib, n, &a](rt::TaskContext& c) { fib(c, n - 1, &a); }, attrs);
        ctx.create_task(
            [&fib, n, &b](rt::TaskContext& c) { fib(c, n - 2, &b); }, attrs);
        ctx.taskwait();
        *out = a + b;
      };

  for (std::uint64_t seed : {0x1ULL, 0xdeadbeefULL, 0x5eedc0deULL}) {
    SCOPED_TRACE(::testing::Message() << "seed 0x" << std::hex << seed);
    const rt::SchedulePolicy policy(seed);
    rt::RealConfig config;
    config.scheduler = GetParam();
    config.policy = &policy;
    rt::RealRuntime runtime(config);
    long result = 0;
    const auto stats = runtime.parallel(4, [&](rt::TaskContext& ctx) {
      if (ctx.single()) fib(ctx, 14, &result);
    });
    EXPECT_EQ(result, 377);
    EXPECT_EQ(stats.tasks_executed, 2u * 610 - 2);  // 2*fib(n+1) - 2
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, RealPerturbedTest,
    ::testing::Values(rt::SchedulerKind::kMutexDeque,
                      rt::SchedulerKind::kChaseLev),
    [](const ::testing::TestParamInfo<rt::SchedulerKind>& param) {
      return param.param == rt::SchedulerKind::kChaseLev ? "chase_lev"
                                                         : "mutex_deque";
    });

namespace sim_replay {

rt::TeamStats run_tree(const rt::SchedulePolicy* policy) {
  RegionRegistry registry;
  const RegionHandle task =
      registry.register_region("t", RegionType::kTask);
  rt::SimConfig config;
  config.policy = policy;
  rt::SimRuntime sim(config);
  std::function<void(rt::TaskContext&, int)> rec = [&](rt::TaskContext& ctx,
                                                       int depth) {
    ctx.work(500);
    if (depth <= 0) return;
    rt::TaskAttrs attrs;
    attrs.region = task;
    attrs.binding =
        depth % 3 == 0 ? rt::TaskBinding::kUntied : rt::TaskBinding::kTied;
    for (int i = 0; i < 2; ++i) {
      ctx.create_task([&rec, depth](rt::TaskContext& c) { rec(c, depth - 1); },
                      attrs);
    }
    ctx.taskwait();
  };
  return sim.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) rec(ctx, 6);
  });
}

}  // namespace sim_replay

TEST(SimSchedulePolicy, SameSeedReplaysIdenticalVirtualTime) {
  for (std::uint64_t seed : {0x1ULL, 0xc0ffeeULL}) {
    SCOPED_TRACE(::testing::Message() << "seed 0x" << std::hex << seed);
    const rt::SchedulePolicy p1(seed);
    const rt::SchedulePolicy p2(seed);
    const rt::TeamStats a = sim_replay::run_tree(&p1);
    const rt::TeamStats b = sim_replay::run_tree(&p2);
    EXPECT_EQ(a.parallel_ticks, b.parallel_ticks);
    EXPECT_EQ(a.tasks_executed, b.tasks_executed);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.migrations, b.migrations);
  }
}

TEST(SimSchedulePolicy, DifferentSeedsExploreDifferentInterleavings) {
  std::set<Ticks> spans;
  std::uint64_t tasks = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const rt::SchedulePolicy policy(seed * 0x9e3779b97f4a7c15ULL);
    const rt::TeamStats stats = sim_replay::run_tree(&policy);
    spans.insert(stats.parallel_ticks);
    if (tasks == 0) tasks = stats.tasks_executed;
    // Perturbation changes timing, never the amount of work.
    EXPECT_EQ(stats.tasks_executed, tasks);
  }
  EXPECT_GE(spans.size(), 2u)
      << "8 seeds all produced the same virtual span; the policy is not "
         "reaching the sim scheduler";
  // An unperturbed run is reproducible too, and unaffected by the policy
  // code path existing.
  const rt::TeamStats base1 = sim_replay::run_tree(nullptr);
  const rt::TeamStats base2 = sim_replay::run_tree(nullptr);
  EXPECT_EQ(base1.parallel_ticks, base2.parallel_ticks);
}

}  // namespace
}  // namespace taskprof
