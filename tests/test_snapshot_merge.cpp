// Merge correctness (`taskprof_cli merge`): splitting one workload's
// per-thread profiles into N snapshot files and merging them back
// reproduces the single-file profile exactly — proven with src/check's
// differential projection — plus registry-handle remapping, telemetry
// folding, and the meta-scalar rules.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "check/differential.hpp"
#include "check/invariants.hpp"
#include "instrument/instrumentor.hpp"
#include "measure/aggregate.hpp"
#include "report/text_report.hpp"
#include "rt/sim_runtime.hpp"
#include "snapshot/merge.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof {
namespace {

TEST(SnapshotMerge, SplitPerThreadSnapshotsReproduceTheSingleFile) {
  RegionRegistry registry;
  rt::SimRuntime runtime;
  Instrumentor instr(registry);
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  auto kernel = bots::make_kernel("sort");
  bots::KernelConfig config;
  config.threads = 4;
  config.size = bots::SizeClass::kTest;
  const bots::KernelResult result = kernel->run(runtime, registry, config);
  ASSERT_TRUE(result.ok);
  runtime.set_hooks(nullptr);
  instr.finalize();

  const std::vector<ThreadProfileView> views = instr.views();
  ASSERT_EQ(views.size(), 4u);
  const AggregateProfile full = aggregate_profiles(views);

  // Split: one snapshot file per thread, as N separate processes that
  // each ran one worker would have written.
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < views.size(); ++i) {
    const std::vector<ThreadProfileView> one = {views[i]};
    const AggregateProfile part = aggregate_profiles(one);
    snapshot::SnapshotMeta meta;
    meta.flush_seq = i + 1;
    meta.process_id = 100 + i;  // distinct processes
    const std::string path =
        testing::TempDir() + "part_" + std::to_string(i) + ".tpsnap";
    snapshot::write_snapshot_file(path, part, registry, meta);
    paths.push_back(path);
  }

  const snapshot::SnapshotData merged = snapshot::merge_snapshot_files(paths);
  for (const std::string& path : paths) std::remove(path.c_str());

  // Meta rules: flush_seq is the max, mixed process ids collapse to 0.
  EXPECT_EQ(merged.meta.flush_seq, 4u);
  EXPECT_EQ(merged.meta.process_id, 0u);

  // The merged profile is indistinguishable from the single-file one.
  EXPECT_EQ(merged.profile.thread_count, full.thread_count);
  EXPECT_EQ(merged.profile.total_task_switches, full.total_task_switches);
  EXPECT_EQ(merged.profile.total_folded_events, full.total_folded_events);
  EXPECT_EQ(merged.profile.max_concurrent_any_thread,
            full.max_concurrent_any_thread);
  EXPECT_EQ(merged.profile.max_concurrent_per_thread,
            full.max_concurrent_per_thread);
  ASSERT_NE(merged.profile.implicit_root, nullptr);
  EXPECT_EQ(merged.profile.implicit_root->visits,
            full.implicit_root->visits);
  EXPECT_EQ(merged.profile.implicit_root->inclusive,
            full.implicit_root->inclusive);

  check::ProfileProjection single =
      check::project_profile(full, registry, result.stats);
  single.engine = "single-file";
  check::ProfileProjection collated = check::project_profile(
      merged.profile, *merged.registry, result.stats);
  collated.engine = "merged";
  std::string joined;
  for (const std::string& d : check::diff_projections(single, collated)) {
    joined += d + "\n";
  }
  EXPECT_TRUE(joined.empty()) << joined;

  // Beyond the projection: the full tick-level reports agree too (the
  // parts carry exact times, so their sums are exact).
  EXPECT_EQ(render_csv(full, registry),
            render_csv(merged.profile, *merged.registry));

  const check::InvariantReport verdict =
      check::check_profile(merged.profile, *merged.registry);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

/// Hand-built single-thread snapshot; `shifted` inserts a padding region
/// so the same logical regions carry different handles.
snapshot::SnapshotData hand_built(bool shifted, std::uint64_t process_id) {
  snapshot::SnapshotData data;
  data.registry = std::make_unique<RegionRegistry>();
  const RegionHandle implicit = data.registry->register_region(
      "implicit task", RegionType::kImplicitTask);
  if (shifted) {
    data.registry->register_region("padding", RegionType::kFunction);
  }
  const RegionHandle create = data.registry->register_region(
      "work_task create", RegionType::kTaskCreate);
  const RegionHandle task =
      data.registry->register_region("work_task", RegionType::kTask);

  AggregateProfile& p = data.profile;
  p.thread_count = 1;
  p.max_concurrent_per_thread = {1};
  p.max_concurrent_any_thread = 1;
  p.implicit_root = p.pool.allocate(implicit, kNoParameter, false, nullptr);
  p.implicit_root->visits = 1;
  p.implicit_root->inclusive = 100;
  p.implicit_root->visit_stats.add(100);
  // Each task tick is bracketed by a stub visit under a scheduling point
  // in the implicit tree — conservation demands the pairing.
  CallNode* spawn = p.pool.allocate(create, kNoParameter, false,
                                    p.implicit_root);
  spawn->visits = 4;
  spawn->inclusive = 44;
  for (int i = 0; i < 4; ++i) spawn->visit_stats.add(11);
  CallNode* stub = p.pool.allocate(task, kNoParameter, true, spawn);
  stub->visits = 4;
  stub->inclusive = 40;
  for (int i = 0; i < 4; ++i) stub->visit_stats.add(10);
  CallNode* root = p.pool.allocate(task, kNoParameter, false, nullptr);
  root->visits = 4;
  root->inclusive = 40;
  for (int i = 0; i < 4; ++i) root->visit_stats.add(10);
  p.task_roots.push_back(root);

  data.meta.flush_seq = 1;
  data.meta.process_id = process_id;
  return data;
}

TEST(SnapshotMerge, ShiftedRegionHandlesAreRemapped) {
  snapshot::SnapshotData dst = hand_built(/*shifted=*/false, 1);
  const snapshot::SnapshotData src = hand_built(/*shifted=*/true, 2);
  // Same logical task region under different handles on each side.
  ASSERT_NE(dst.profile.task_roots[0]->region,
            src.profile.task_roots[0]->region);
  snapshot::merge_snapshot_into(dst, src);

  // The destination registry gained the padding region without
  // disturbing its existing handles.
  ASSERT_EQ(dst.registry->size(), 4u);
  EXPECT_EQ(dst.registry->info(0).name, "implicit task");
  EXPECT_EQ(dst.registry->info(1).name, "work_task create");
  EXPECT_EQ(dst.registry->info(2).name, "work_task");
  EXPECT_EQ(dst.registry->info(3).name, "padding");

  EXPECT_EQ(dst.profile.thread_count, 2u);
  EXPECT_EQ(dst.profile.implicit_root->visits, 2u);
  EXPECT_EQ(dst.profile.implicit_root->inclusive, 200);
  ASSERT_EQ(dst.profile.task_roots.size(), 1u);
  const CallNode* root = dst.profile.task_roots[0];
  EXPECT_EQ(dst.registry->info(root->region).name, "work_task");
  EXPECT_EQ(root->visits, 8u);
  EXPECT_EQ(root->inclusive, 80);
  EXPECT_EQ(root->visit_stats.count, 8u);
  EXPECT_EQ(root->visit_stats.min, 10);
  EXPECT_EQ(root->visit_stats.max, 10);
  EXPECT_EQ(dst.meta.process_id, 0u);  // 1 vs 2: no single writer

  const check::InvariantReport verdict =
      check::check_profile(dst.profile, *dst.registry);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

TEST(SnapshotMerge, PartialFlagIsSticky) {
  snapshot::SnapshotData dst = hand_built(false, 1);
  snapshot::SnapshotData src = hand_built(false, 1);
  src.profile.partial_capture = true;
  snapshot::merge_snapshot_into(dst, src);
  EXPECT_TRUE(dst.profile.partial_capture);
  EXPECT_EQ(dst.meta.process_id, 1u);  // same writer stays identified
}

TEST(SnapshotMerge, DifferentProgramsAreRejected) {
  snapshot::SnapshotData dst = hand_built(false, 1);
  snapshot::SnapshotData src;
  src.registry = std::make_unique<RegionRegistry>();
  const RegionHandle other = src.registry->register_region(
      "a different main", RegionType::kImplicitTask);
  src.profile.thread_count = 1;
  src.profile.max_concurrent_per_thread = {1};
  src.profile.implicit_root =
      src.profile.pool.allocate(other, kNoParameter, false, nullptr);
  src.profile.implicit_root->visits = 1;
  try {
    snapshot::merge_snapshot_into(dst, src);
    FAIL() << "merge of different programs accepted";
  } catch (const snapshot::SnapshotError& error) {
    EXPECT_EQ(error.code(), snapshot::Errc::kMalformed);
  }
}

TEST(SnapshotMerge, TelemetryFoldsCountersSumGaugesMax) {
  using telemetry::Counter;
  using telemetry::Gauge;
  telemetry::Snapshot a;
  a.threads = 2;
  a.counters[static_cast<std::size_t>(Counter::kTasksCreated)] = 10;
  a.gauges[static_cast<std::size_t>(Gauge::kDequeDepth)] = 7;
  a.per_thread.resize(2);
  telemetry::Snapshot b;
  b.threads = 1;
  b.counters[static_cast<std::size_t>(Counter::kTasksCreated)] = 5;
  b.gauges[static_cast<std::size_t>(Gauge::kDequeDepth)] = 3;
  b.per_thread.resize(1);

  telemetry::merge_into(a, b);
  EXPECT_EQ(a.threads, 3);
  EXPECT_EQ(a.counter(Counter::kTasksCreated), 15u);
  EXPECT_EQ(a.gauge(Gauge::kDequeDepth), 7u);
  EXPECT_EQ(a.per_thread.size(), 3u);
}

TEST(SnapshotMerge, SnapshotFilesCarryTelemetryThroughMerge) {
  snapshot::SnapshotData a = hand_built(false, 1);
  a.has_telemetry = true;
  a.telemetry.threads = 1;
  a.telemetry.counters[0] = 4;
  snapshot::SnapshotData b = hand_built(false, 1);
  b.has_telemetry = true;
  b.telemetry.threads = 1;
  b.telemetry.counters[0] = 6;
  snapshot::merge_snapshot_into(a, b);
  EXPECT_TRUE(a.has_telemetry);
  EXPECT_EQ(a.telemetry.counters[0], 10u);
  EXPECT_EQ(a.telemetry.threads, 2);
}

}  // namespace
}  // namespace taskprof
