// Differential validation corpus for the what-if projection: for every
// BOTS kernel, the analytical projection must agree with a sim replay
// that actually applies the hypothesis (rt::DurationScale), across 2/4/8
// threads and N ∈ {25%, 50%, 90%}, within the per-kernel tolerance gate.
// Each kernel's full JSON report is pinned byte-for-byte as
// tests/corpus/whatif/<kernel>.case.  Regenerate after an intentional
// model/schema change with
//   TASKPROF_REGEN_WHATIF=1 ./test_whatif_validate
// and commit the updated .case files alongside the change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bots/kernel.hpp"
#include "whatif/validate.hpp"

namespace taskprof {
namespace {

#ifndef TASKPROF_WHATIF_CORPUS_DIR
#error "tests/CMakeLists.txt must define TASKPROF_WHATIF_CORPUS_DIR"
#endif

whatif::ValidateOptions options_for(const std::string& kernel) {
  whatif::ValidateOptions options;
  options.kernels = {kernel};
  options.threads = {2, 4, 8};
  options.fractions = {0.25, 0.50, 0.90};
  options.size = bots::SizeClass::kTest;
  return options;
}

std::filesystem::path case_path(const std::string& kernel) {
  return std::filesystem::path(TASKPROF_WHATIF_CORPUS_DIR) /
         (kernel + ".case");
}

TEST(WhatIfValidate, EveryKernelWithinItsToleranceGate) {
  // The headline differential check: 9 kernels x 3 thread counts x 3
  // fractions, each projected analytically and replayed on the sim with
  // the speedup applied to the virtual task durations.
  for (const auto& kernel : bots::make_all_kernels()) {
    SCOPED_TRACE(kernel->name());
    whatif::Error error;
    const whatif::ValidateReport report =
        whatif::run_validation(options_for(std::string(kernel->name())), &error);
    ASSERT_TRUE(error.ok()) << error.message;
    ASSERT_EQ(report.cases.size(), 9u);
    std::ostringstream os;
    whatif::render_validate_text(report, os);
    EXPECT_TRUE(report.all_within()) << os.str();
    for (const whatif::ValidateCase& c : report.cases) {
      // The gates themselves stay honest: never looser than 50%.  A
      // hypothesis may leave the makespan roughly flat (scheduler
      // feedback can even make it slightly slower), but never wreck it.
      EXPECT_LE(c.tolerance, 0.50);
      EXPECT_GT(c.simulated_speedup, 0.9);
    }
  }
}

TEST(WhatIfValidate, GoldenReportsAreStable) {
  const bool regen = std::getenv("TASKPROF_REGEN_WHATIF") != nullptr;
  for (const auto& kernel : bots::make_all_kernels()) {
    SCOPED_TRACE(kernel->name());
    const whatif::ValidateReport report =
        whatif::run_validation(options_for(std::string(kernel->name())));
    const std::string json = whatif::render_validate_json(report);
    const std::filesystem::path path = case_path(std::string(kernel->name()));
    if (regen) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << json;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (regenerate with TASKPROF_REGEN_WHATIF=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(json, golden.str())
        << "validation JSON drifted from the committed golden; if the "
           "change is intentional, regenerate with TASKPROF_REGEN_WHATIF=1";
  }
}

TEST(WhatIfValidate, RunsAreDeterministic) {
  // Two fresh validations of the same kernel must serialize identically —
  // the property the goldens rely on.
  const whatif::ValidateOptions options = options_for("fib");
  EXPECT_EQ(whatif::render_validate_json(whatif::run_validation(options)),
            whatif::render_validate_json(whatif::run_validation(options)));
}

TEST(WhatIfValidate, UnknownKernelIsATypedError) {
  whatif::ValidateOptions options = options_for("no_such_kernel");
  whatif::Error error;
  const whatif::ValidateReport report =
      whatif::run_validation(options, &error);
  EXPECT_EQ(error.code, whatif::ErrorCode::kUnknownPath);
  EXPECT_TRUE(report.cases.empty());
}

TEST(WhatIfValidate, DefaultGatesOnlyLoosenDocumentedKernels) {
  const auto gates = whatif::default_kernel_gates();
  for (const auto& [kernel, gate] : gates) {
    EXPECT_GE(gate.tolerance, 0.15) << kernel;
    EXPECT_LE(gate.tolerance, 0.50) << kernel;
  }
  // floorplan's branch-and-bound pruning is schedule-dependent; it is the
  // only kernel excused from structure equality.
  for (const auto& [kernel, gate] : gates) {
    if (kernel != "floorplan") {
      EXPECT_TRUE(gate.require_identical_structure) << kernel;
    } else {
      EXPECT_FALSE(gate.require_identical_structure);
    }
  }
}

}  // namespace
}  // namespace taskprof
