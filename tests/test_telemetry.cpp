// Tests for the scheduler-telemetry registry (src/telemetry): concurrent
// counter recording, monotonic gauges, snapshot aggregation, the JSON
// export, the TimedHooks self-timing decorator, and end-to-end agreement
// with the always-on TeamStats when attached to the real engine.
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "rt/real_runtime.hpp"
#include "rt/task_context.hpp"

namespace taskprof {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Registry;
using telemetry::Snapshot;

TEST(TelemetryRegistry, SingleThreadCountsExactly) {
  Registry registry;
  registry.prepare(2);
  registry.add(0, Counter::kTasksCreated);
  registry.add(0, Counter::kTasksCreated, 4);
  registry.add(1, Counter::kTasksCreated, 10);
  registry.add(1, Counter::kStealAttempts, 3);

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.threads, 2);
  EXPECT_EQ(snap.counter(Counter::kTasksCreated), 15u);
  EXPECT_EQ(snap.counter(Counter::kStealAttempts), 3u);
  EXPECT_EQ(snap.counter(Counter::kTasksExecuted), 0u);
  ASSERT_EQ(snap.per_thread.size(), 2u);
  EXPECT_EQ(snap.per_thread[0][static_cast<std::size_t>(
                Counter::kTasksCreated)],
            5u);
  EXPECT_EQ(snap.per_thread[1][static_cast<std::size_t>(
                Counter::kTasksCreated)],
            10u);
}

TEST(TelemetryRegistry, GaugesKeepHighWater) {
  Registry registry;
  registry.prepare(2);
  registry.gauge_max(0, Gauge::kDequeDepth, 5);
  registry.gauge_max(0, Gauge::kDequeDepth, 3);  // lower: ignored
  registry.gauge_max(0, Gauge::kDequeDepth, 9);
  registry.gauge_max(1, Gauge::kDequeDepth, 7);

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauge(Gauge::kDequeDepth), 9u);  // max over threads

  registry.reset();
  const Snapshot zero = registry.snapshot();
  EXPECT_EQ(zero.gauge(Gauge::kDequeDepth), 0u);
  EXPECT_EQ(zero.counter(Counter::kTasksCreated), 0u);
}

TEST(TelemetryRegistry, PrepareKeepsExistingCounts) {
  Registry registry;
  registry.prepare(1);
  registry.add(0, Counter::kTasksCreated, 7);
  registry.prepare(4);  // grow: existing block untouched
  EXPECT_EQ(registry.thread_capacity(), 4);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(Counter::kTasksCreated), 7u);
}

// Each thread hammers its own block while the main thread snapshots
// concurrently.  Snapshots must never crash or read torn values larger
// than the final total; the final (quiescent) snapshot must be exact.
TEST(TelemetryRegistry, ConcurrentIncrementAndSnapshot) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200000;
  Registry registry;
  registry.prepare(kThreads);

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.add(t, Counter::kTasksCreated);
        registry.gauge_max(t, Gauge::kDequeDepth, i % 97);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Concurrent snapshots: monotonically growing, never over the total.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const Snapshot snap = registry.snapshot();
    const std::uint64_t seen = snap.counter(Counter::kTasksCreated);
    EXPECT_GE(seen, last);
    EXPECT_LE(seen, kPerThread * kThreads);
    last = seen;
  }
  for (auto& w : workers) w.join();

  const Snapshot final_snap = registry.snapshot();
  EXPECT_EQ(final_snap.counter(Counter::kTasksCreated),
            kPerThread * kThreads);
  EXPECT_EQ(final_snap.gauge(Gauge::kDequeDepth), 96u);
}

TEST(TelemetrySnapshot, DerivedRates) {
  Registry registry;
  registry.prepare(1);
  registry.add(0, Counter::kStealAttempts, 8);
  registry.add(0, Counter::kStealSuccesses, 2);
  registry.add(0, Counter::kHookEvents, 4);
  registry.add(0, Counter::kHookTicks, 100);

  const Snapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.steal_success_rate(), 0.25);
  EXPECT_DOUBLE_EQ(snap.hook_mean_ticks(), 25.0);

  const Snapshot empty = Registry().snapshot();
  EXPECT_DOUBLE_EQ(empty.steal_success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.hook_mean_ticks(), 0.0);
}

TEST(TelemetrySnapshot, JsonExportContainsCountersAndDerived) {
  Registry registry;
  registry.prepare(2);
  registry.add(0, Counter::kTasksCreated, 3);
  registry.add(1, Counter::kStealAttempts, 4);
  registry.add(1, Counter::kStealSuccesses, 1);
  registry.gauge_max(0, Gauge::kDequeDepth, 11);

  const std::string json = telemetry::snapshot_to_json(registry.snapshot());
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tasks_created\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"deque_depth_hwm\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"steal_success_rate\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"per_thread\""), std::string::npos);
  // Crude structural sanity: balanced braces/brackets.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TelemetryNames, AllEnumeratorsNamed) {
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    EXPECT_FALSE(
        telemetry::counter_name(static_cast<Counter>(i)).empty());
  }
  for (std::size_t i = 0; i < telemetry::kGaugeCount; ++i) {
    EXPECT_FALSE(telemetry::gauge_name(static_cast<Gauge>(i)).empty());
  }
}

// Inner hooks that advance a ManualClock by a fixed cost per event, so
// TimedHooks' measured hook time is exactly predictable.
class SlowHooks final : public rt::SchedulerHooks {
 public:
  SlowHooks(ManualClock* clock, Ticks cost) : clock_(clock), cost_(cost) {}

  void on_task_begin(ThreadId, TaskInstanceId, RegionHandle,
                     std::int64_t) override {
    clock_->advance(cost_);
  }
  void on_task_end(ThreadId, TaskInstanceId) override {
    clock_->advance(cost_);
  }

 private:
  ManualClock* clock_;
  Ticks cost_;
};

TEST(TimedHooks, ChargesInnerCallbackTimeToRegistry) {
  Registry registry;
  registry.prepare(1);
  ManualClock clock;
  SlowHooks inner(&clock, 10);
  telemetry::TimedHooks timed(&inner, &registry, &clock);

  timed.on_task_begin(0, 1, 0, kNoParameter);
  timed.on_task_end(0, 1);
  timed.on_task_switch(0, kImplicitTaskId);  // no-op inner: zero ticks

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(Counter::kHookEvents), 3u);
  EXPECT_EQ(snap.counter(Counter::kHookTicks), 20u);
  EXPECT_DOUBLE_EQ(snap.hook_mean_ticks(), 20.0 / 3.0);
}

TEST(TimedHooks, ParallelBeginPreparesRegistry) {
  Registry registry;
  rt::SchedulerHooks inner;  // all no-ops
  telemetry::TimedHooks timed(&inner, &registry);
  timed.on_parallel_begin(3);
  EXPECT_GE(registry.thread_capacity(), 3);
}

// End-to-end on the real engine: deep telemetry must agree with the
// always-on TeamStats summary for the shared quantities.
void telemetry_matches_team_stats(rt::SchedulerKind scheduler) {
  rt::RealConfig config;
  config.scheduler = scheduler;
  rt::RealRuntime runtime(config);
  Registry registry;
  runtime.set_telemetry(&registry);

  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  const rt::TeamStats stats =
      runtime.parallel(4, [&ran](rt::TaskContext& ctx) {
        if (ctx.thread_id() != 0) return;
        for (int i = 0; i < kTasks; ++i) {
          ctx.create_task(
              [&ran](rt::TaskContext&) {
                ran.fetch_add(1, std::memory_order_relaxed);
              },
              {});
        }
        ctx.taskwait();
      });
  runtime.set_telemetry(nullptr);

  EXPECT_EQ(ran.load(), kTasks);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter(Counter::kTasksCreated), stats.tasks_created);
  EXPECT_EQ(snap.counter(Counter::kTasksCreated),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.counter(Counter::kTasksExecuted),
            stats.tasks_executed);
  EXPECT_EQ(snap.counter(Counter::kStealAttempts), stats.steal_attempts);
  EXPECT_EQ(snap.counter(Counter::kStealSuccesses), stats.steals);
  EXPECT_LE(snap.counter(Counter::kStealSuccesses),
            snap.counter(Counter::kStealAttempts));
  // Every created task got a slab record, and all were returned.
  EXPECT_EQ(snap.counter(Counter::kSlabAllocs),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.counter(Counter::kSlabRecycles),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_GE(snap.gauge(Gauge::kSlabRecords), 1u);
  EXPECT_GE(snap.counter(Counter::kTaskwaitEntries), 1u);
  EXPECT_GE(snap.counter(Counter::kBarrierEntries), 4u);
}

TEST(TelemetryEndToEnd, ChaseLevMatchesTeamStats) {
  telemetry_matches_team_stats(rt::SchedulerKind::kChaseLev);
}

TEST(TelemetryEndToEnd, MutexDequeMatchesTeamStats) {
  telemetry_matches_team_stats(rt::SchedulerKind::kMutexDeque);
}

TEST(TelemetryEndToEnd, NoSinkMeansNoRegistryTouches) {
  // Running without set_telemetry must leave a separate registry empty
  // (nothing global leaks) and still fill TeamStats.
  rt::RealRuntime runtime;
  Registry registry;  // never attached
  std::atomic<int> ran{0};
  const rt::TeamStats stats =
      runtime.parallel(2, [&ran](rt::TaskContext& ctx) {
        if (ctx.thread_id() != 0) return;
        for (int i = 0; i < 10; ++i) {
          ctx.create_task(
              [&ran](rt::TaskContext&) {
                ran.fetch_add(1, std::memory_order_relaxed);
              },
              {});
        }
        ctx.taskwait();
      });
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(stats.tasks_created, 10u);
  EXPECT_EQ(registry.snapshot().counter(Counter::kTasksCreated), 0u);
}

}  // namespace
}  // namespace taskprof
