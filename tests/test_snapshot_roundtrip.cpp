// Round-trip goldens for the .tpsnap serializer: write -> read ->
// re-write is byte-identical for every BOTS kernel shape, the loaded
// profile passes check_profile, projects equal to the live profile via
// src/check's differ, and the text and CUBE reports render a loaded
// snapshot identically to the live profile it came from.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "check/differential.hpp"
#include "check/invariants.hpp"
#include "instrument/instrumentor.hpp"
#include "report/cube_export.hpp"
#include "report/text_report.hpp"
#include "rt/sim_runtime.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof {
namespace {

struct Measured {
  RegionRegistry registry;
  bots::KernelResult result;
  AggregateProfile profile;
};

void run_kernel(Measured& out, const std::string& name) {
  rt::SimRuntime runtime;
  Instrumentor instr(out.registry);
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  auto kernel = bots::make_kernel(name);
  ASSERT_NE(kernel, nullptr) << name;
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;
  out.result = kernel->run(runtime, out.registry, config);
  runtime.set_hooks(nullptr);
  instr.finalize();
  out.profile = instr.aggregate();
  ASSERT_TRUE(out.result.ok) << name << ": " << out.result.check;
}

snapshot::SnapshotMeta test_meta() {
  snapshot::SnapshotMeta meta;
  meta.flush_seq = 7;
  meta.process_id = 42;
  return meta;
}

TEST(SnapshotRoundTrip, EveryBotsKernelShapeIsByteIdentical) {
  for (const auto& kernel : bots::make_all_kernels()) {
    const std::string name(kernel->name());
    SCOPED_TRACE(name);
    Measured m;
    run_kernel(m, name);

    const std::vector<std::uint8_t> first =
        snapshot::encode_snapshot(m.profile, m.registry, test_meta());
    const snapshot::SnapshotData loaded =
        snapshot::decode_snapshot(first, name);
    const std::vector<std::uint8_t> second =
        snapshot::encode_snapshot(loaded);
    ASSERT_EQ(first, second) << "re-encode of " << name
                             << " is not byte-identical";

    // The loaded profile is a first-class profile: every structural
    // invariant the live one satisfies, it satisfies.
    const check::InvariantReport verdict = check::check_profile(
        loaded.profile, *loaded.registry, &m.result.stats);
    EXPECT_TRUE(verdict.ok()) << verdict.to_string();

    // Loaded and live agree under the sim/real differential projection.
    check::ProfileProjection live =
        check::project_profile(m.profile, m.registry, m.result.stats);
    live.engine = "live";
    check::ProfileProjection reread = check::project_profile(
        loaded.profile, *loaded.registry, m.result.stats);
    reread.engine = "loaded";
    std::string joined;
    for (const std::string& d : check::diff_projections(live, reread)) {
      joined += d + "\n";
    }
    EXPECT_TRUE(joined.empty()) << joined;

    // Reports cannot tell a loaded snapshot from the live profile.
    EXPECT_EQ(render_profile(m.profile, m.registry),
              render_profile(loaded.profile, *loaded.registry));
    EXPECT_EQ(render_cube_xml(m.profile, m.registry),
              render_cube_xml(loaded.profile, *loaded.registry));
    EXPECT_EQ(render_csv(m.profile, m.registry),
              render_csv(loaded.profile, *loaded.registry));
  }
}

TEST(SnapshotRoundTrip, MetaScalarsSurvive) {
  Measured m;
  run_kernel(m, "fib");
  const auto bytes =
      snapshot::encode_snapshot(m.profile, m.registry, test_meta());
  const snapshot::SnapshotData loaded = snapshot::decode_snapshot(bytes);
  EXPECT_EQ(loaded.meta.flush_seq, 7u);
  EXPECT_EQ(loaded.meta.process_id, 42u);
  EXPECT_EQ(loaded.profile.thread_count, m.profile.thread_count);
  EXPECT_EQ(loaded.profile.total_task_switches,
            m.profile.total_task_switches);
  EXPECT_EQ(loaded.profile.total_folded_events,
            m.profile.total_folded_events);
  EXPECT_EQ(loaded.profile.max_concurrent_any_thread,
            m.profile.max_concurrent_any_thread);
  EXPECT_EQ(loaded.profile.max_concurrent_per_thread,
            m.profile.max_concurrent_per_thread);
  EXPECT_FALSE(loaded.profile.partial_capture);
  EXPECT_FALSE(loaded.has_telemetry);
}

TEST(SnapshotRoundTrip, PartialFlagSurvives) {
  Measured m;
  run_kernel(m, "fib");
  m.profile.partial_capture = true;
  const auto bytes =
      snapshot::encode_snapshot(m.profile, m.registry, test_meta());
  const snapshot::SnapshotData loaded = snapshot::decode_snapshot(bytes);
  EXPECT_TRUE(loaded.profile.partial_capture);
  // Round trip stays canonical with the flag set.
  EXPECT_EQ(bytes, snapshot::encode_snapshot(loaded));
}

TEST(SnapshotRoundTrip, TelemetrySectionSurvivesExactly) {
  Measured m;
  run_kernel(m, "fib");
  telemetry::Registry telem;
  telem.prepare(2);
  telem.add(0, telemetry::Counter::kTasksCreated, 10);
  telem.add(1, telemetry::Counter::kTasksExecuted, 10);
  telem.add(1, telemetry::Counter::kStealAttempts, 3);
  telem.gauge_max(0, telemetry::Gauge::kDequeDepth, 5);
  const telemetry::Snapshot snap = telem.snapshot();

  const auto bytes =
      snapshot::encode_snapshot(m.profile, m.registry, test_meta(), &snap);
  const snapshot::SnapshotData loaded = snapshot::decode_snapshot(bytes);
  ASSERT_TRUE(loaded.has_telemetry);
  EXPECT_EQ(loaded.telemetry.threads, snap.threads);
  EXPECT_EQ(loaded.telemetry.counters, snap.counters);
  EXPECT_EQ(loaded.telemetry.gauges, snap.gauges);
  EXPECT_EQ(loaded.telemetry.per_thread, snap.per_thread);
  // The canonical JSON export agrees byte for byte.
  EXPECT_EQ(telemetry::snapshot_to_json(loaded.telemetry),
            telemetry::snapshot_to_json(snap));
  EXPECT_EQ(bytes, snapshot::encode_snapshot(loaded));
}

TEST(SnapshotRoundTrip, FileRoundTripThroughDisk) {
  Measured m;
  run_kernel(m, "nqueens");
  const std::string path = testing::TempDir() + "roundtrip.tpsnap";
  snapshot::write_snapshot_file(path, m.profile, m.registry, test_meta());
  const snapshot::SnapshotData loaded = snapshot::read_snapshot_file(path);
  EXPECT_EQ(snapshot::encode_snapshot(m.profile, m.registry, test_meta()),
            snapshot::encode_snapshot(loaded));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace taskprof
