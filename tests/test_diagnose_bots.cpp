// No-false-positive sweep: every BOTS kernel, run clean on the sim
// engine across thread counts, must produce zero problem-severity
// diagnoses.  The detectors exist to name real anti-patterns; a healthy
// divide-and-conquer kernel that trips one is a calibration bug (see
// DESIGN.md §13 for the thresholds and the margins this sweep pins).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bots/kernel.hpp"
#include "diagnose/diagnose.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"
#include "trace/recorder.hpp"

namespace taskprof {
namespace {

constexpr const char* kKernels[] = {
    "alignment", "fft",  "fib",      "floorplan", "health",
    "nqueens",   "sort", "sparselu", "strassen",
};

TEST(DiagnoseBots, CleanKernelsHaveNoProblemFindings) {
  for (const char* name : kKernels) {
    for (const int threads : {2, 4, 8}) {
      SCOPED_TRACE(std::string(name) + " threads=" +
                   std::to_string(threads));
      RegionRegistry registry;
      rt::SimRuntime runtime;
      Instrumentor instrumentor(registry, MeasureOptions{});
      trace::TraceRecorder recorder;
      rt::FanoutHooks fanout;
      fanout.add(&instrumentor);
      fanout.add(&recorder);
      runtime.set_hooks(&fanout);
      auto kernel = bots::make_kernel(name);
      ASSERT_NE(kernel, nullptr);
      bots::KernelConfig config;
      config.threads = threads;
      config.size = bots::SizeClass::kTest;
      const bots::KernelResult result =
          kernel->run(runtime, registry, config);
      ASSERT_TRUE(result.ok) << result.check;
      runtime.set_hooks(nullptr);
      instrumentor.finalize();
      const AggregateProfile profile = instrumentor.aggregate();
      const trace::Trace recorded = recorder.take();

      diag::DiagnosisInput input;
      input.profile = &profile;
      input.registry = &registry;
      input.trace = &recorded;
      const diag::DiagnosisReport report = diag::run_diagnosis(input);
      EXPECT_EQ(report.count_at_least(diag::Severity::kProblem), 0u)
          << [&report] {
               std::string all;
               for (const diag::Diagnosis& d : report.findings) {
                 if (d.severity == diag::Severity::kProblem) {
                   all += d.detector + ": " + d.summary + "\n";
                 }
               }
               return all;
             }();
      EXPECT_TRUE(report.has_workspan);
      EXPECT_GT(report.workspan.logical_parallelism(), 1.0);
    }
  }
}

}  // namespace
}  // namespace taskprof
