// Golden-file coverage for the --telemetry-json output shape
// (telemetry::snapshot_to_json): the exact rendering of a hand-built
// snapshot, schema-key presence on a real run, and counter monotonicity
// across successive snapshots of one registry.
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "profile/region.hpp"
#include "rt/real_runtime.hpp"

namespace taskprof {
namespace {

using telemetry::Counter;
using telemetry::Gauge;

telemetry::Snapshot golden_snapshot() {
  telemetry::Snapshot snap;
  snap.threads = 1;
  auto set = [&snap](Counter c, std::uint64_t v) {
    snap.counters[static_cast<std::size_t>(c)] = v;
  };
  set(Counter::kTasksCreated, 10);
  set(Counter::kTasksExecuted, 10);
  set(Counter::kTasksDeferred, 9);
  set(Counter::kTasksUndeferred, 1);
  set(Counter::kStealAttempts, 4);
  set(Counter::kStealSuccesses, 2);
  set(Counter::kStealAborts, 1);
  set(Counter::kTaskwaitEntries, 5);
  set(Counter::kBarrierEntries, 2);
  set(Counter::kSingleWins, 1);
  set(Counter::kSchedYields, 3);
  set(Counter::kSlabAllocs, 10);
  set(Counter::kSlabRecycles, 10);
  set(Counter::kSlabRemoteRecycles, 2);
  set(Counter::kMigrations, 0);
  set(Counter::kHookEvents, 4);
  set(Counter::kHookTicks, 10);
  snap.gauges[static_cast<std::size_t>(Gauge::kDequeDepth)] = 3;
  snap.gauges[static_cast<std::size_t>(Gauge::kSlabRecords)] = 7;
  snap.gauges[static_cast<std::size_t>(Gauge::kTaskStackDepth)] = 2;
  snap.gauges[static_cast<std::size_t>(Gauge::kRunQueueDepth)] = 0;
  snap.per_thread.push_back(snap.counters);
  return snap;
}

TEST(TelemetryJson, GoldenRendering) {
  // Hand-computed: steal rate 2/4 = 0.5, hook mean 10/4 = 2.5 ns.
  const std::string expected =
      "{\n"
      "  \"threads\": 1,\n"
      "  \"counters\": {\n"
      "    \"tasks_created\": 10,\n"
      "    \"tasks_executed\": 10,\n"
      "    \"tasks_deferred\": 9,\n"
      "    \"tasks_undeferred\": 1,\n"
      "    \"steal_attempts\": 4,\n"
      "    \"steal_successes\": 2,\n"
      "    \"steal_aborts\": 1,\n"
      "    \"taskwait_entries\": 5,\n"
      "    \"barrier_entries\": 2,\n"
      "    \"single_wins\": 1,\n"
      "    \"sched_yields\": 3,\n"
      "    \"slab_allocs\": 10,\n"
      "    \"slab_recycles\": 10,\n"
      "    \"slab_remote_recycles\": 2,\n"
      "    \"migrations\": 0,\n"
      "    \"hook_events\": 4,\n"
      "    \"hook_ticks\": 10,\n"
      "    \"taskgraph_records\": 0,\n"
      "    \"taskgraph_replays\": 0,\n"
      "    \"taskgraph_fallbacks\": 0,\n"
      "    \"taskgraph_divergences\": 0,\n"
      "    \"taskgraph_static_spawns\": 0,\n"
      "    \"taskgraph_dynamic_spawns\": 0,\n"
      "    \"taskgraph_diverge_structure\": 0,\n"
      "    \"taskgraph_diverge_short_spawn\": 0,\n"
      "    \"taskgraph_diverge_residue\": 0,\n"
      "    \"steals_in_domain\": 0,\n"
      "    \"steals_cross_domain\": 0,\n"
      "    \"steal_batch_tasks\": 0,\n"
      "    \"steal_escalations\": 0\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"deque_depth_hwm\": 3,\n"
      "    \"slab_records_hwm\": 7,\n"
      "    \"task_stack_depth_hwm\": 2,\n"
      "    \"run_queue_depth_hwm\": 0\n"
      "  },\n"
      "  \"derived\": {\n"
      "    \"steal_success_rate\": 0.5,\n"
      "    \"hook_mean_ns\": 2.5\n"
      "  },\n"
      "  \"per_thread\": [\n"
      "    [10, 10, 9, 1, 4, 2, 1, 5, 2, 1, 3, 10, 10, 2, 0, 4, 10, "
      "0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(telemetry::snapshot_to_json(golden_snapshot()), expected);
}

TEST(TelemetryJson, SchemaKeysPresentOnRealRun) {
  telemetry::Registry registry;
  rt::RealRuntime runtime;
  runtime.set_telemetry(&registry);
  RegionRegistry regions;
  const RegionHandle task = regions.register_region("t", RegionType::kTask);
  runtime.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 100; ++i) {
      rt::TaskAttrs attrs;
      attrs.region = task;
      ctx.create_task([](rt::TaskContext&) {}, attrs);
    }
    ctx.taskwait();
  });
  runtime.set_telemetry(nullptr);

  const std::string json = telemetry::snapshot_to_json(registry.snapshot());
  // Every counter/gauge name plus the fixed schema keys must appear.
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    const std::string key =
        std::string(telemetry::counter_name(static_cast<Counter>(i)));
    EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos) << key;
  }
  for (std::size_t i = 0; i < telemetry::kGaugeCount; ++i) {
    const std::string key =
        std::string(telemetry::gauge_name(static_cast<Gauge>(i)));
    EXPECT_NE(json.find("\"" + key + "\":"), std::string::npos) << key;
  }
  for (const char* key : {"\"threads\":", "\"counters\":", "\"gauges\":",
                          "\"derived\":", "\"steal_success_rate\":",
                          "\"hook_mean_ns\":", "\"per_thread\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(TelemetryJson, CountersMonotonicAcrossSnapshots) {
  telemetry::Registry registry;
  rt::RealRuntime runtime;
  runtime.set_telemetry(&registry);
  RegionRegistry regions;
  const RegionHandle task = regions.register_region("t", RegionType::kTask);
  const auto burst = [&] {
    runtime.parallel(2, [&](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      for (int i = 0; i < 50; ++i) {
        rt::TaskAttrs attrs;
        attrs.region = task;
        ctx.create_task([](rt::TaskContext&) {}, attrs);
      }
      ctx.taskwait();
    });
  };

  burst();
  const telemetry::Snapshot first = registry.snapshot();
  burst();
  const telemetry::Snapshot second = registry.snapshot();
  runtime.set_telemetry(nullptr);

  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    EXPECT_GE(second.counters[i], first.counters[i])
        << telemetry::counter_name(static_cast<Counter>(i));
  }
  EXPECT_EQ(second.counter(Counter::kTasksCreated),
            first.counter(Counter::kTasksCreated) + 50);
  ASSERT_EQ(second.per_thread.size(), static_cast<std::size_t>(second.threads));
  // The aggregate is exactly the per-thread sum once the region quiesces.
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    std::uint64_t sum = 0;
    for (const auto& row : second.per_thread) sum += row[i];
    EXPECT_EQ(sum, second.counters[i])
        << telemetry::counter_name(static_cast<Counter>(i));
  }
}

}  // namespace
}  // namespace taskprof
