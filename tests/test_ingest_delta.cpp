// Delta snapshots: subtract(cur, base) then apply onto a clone of base
// reproduces cur byte-for-byte; non-monotone captures are rejected;
// carried ancestors keep paths intact; visit_stats survive exactly even
// when producers revise provisional in-progress samples; and evict_cold
// folds cold subtrees into "[evicted]" stubs without losing a single
// visit or tick.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "ingest/delta.hpp"
#include "ingest/protocol.hpp"
#include "ingest/session.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {
namespace {

using snapshot::SnapshotData;
using snapshot::SnapshotError;

/// Two-stage synthetic producer: stage 0 is an early capture, stage 1 a
/// later one with strictly more mass, one brand-new region/subtree, a
/// smaller min sample, and changed profile-wide scalars.
SnapshotData capture(int stage) {
  SnapshotData data;
  data.registry = std::make_unique<RegionRegistry>();
  const RegionHandle implicit = data.registry->register_region(
      "implicit task", RegionType::kImplicitTask);
  const RegionHandle work =
      data.registry->register_region("work", RegionType::kFunction);
  AggregateProfile& p = data.profile;
  p.thread_count = 2;
  p.max_concurrent_per_thread = {1, 1};
  p.max_concurrent_any_thread = stage == 0 ? 1 : 2;
  p.total_task_switches = stage == 0 ? 3 : 9;
  p.implicit_root = p.pool.allocate(implicit, kNoParameter, false, nullptr);
  p.implicit_root->visits = stage == 0 ? 2 : 5;
  p.implicit_root->inclusive = stage == 0 ? 100 : 260;
  p.implicit_root->visit_stats.add(40);
  p.implicit_root->visit_stats.add(60);
  if (stage > 0) {
    p.implicit_root->visit_stats.add(30);  // new min: 30
    p.implicit_root->visit_stats.add(60);
    p.implicit_root->visit_stats.add(70);  // new max: 70
  }
  CallNode* worker =
      p.pool.allocate(work, kNoParameter, false, p.implicit_root);
  worker->visits = stage == 0 ? 1 : 1;  // untouched in stage 1
  worker->inclusive = 20;
  worker->visit_stats.add(20);
  if (stage > 0) {
    const RegionHandle late =
        data.registry->register_region("late_phase", RegionType::kFunction);
    CallNode* grand = p.pool.allocate(late, kNoParameter, false, worker);
    grand->visits = 3;
    grand->inclusive = 12;
    for (int i = 0; i < 3; ++i) grand->visit_stats.add(4);
  }
  data.meta.flush_seq = stage + 1;
  data.meta.process_id = 42;
  return data;
}

TEST(IngestDelta, CloneIsByteIdentical) {
  const SnapshotData cur = capture(1);
  const SnapshotData copy = clone_snapshot(cur);
  EXPECT_EQ(snapshot::encode_snapshot(cur), snapshot::encode_snapshot(copy));
}

TEST(IngestDelta, SubtractThenApplyReproducesCurExactly) {
  const SnapshotData base = capture(0);
  const SnapshotData cur = capture(1);
  const DeltaResult delta = subtract_snapshot(cur, &base);

  // The new subtree changed; its parent chain rode along as carriers.
  EXPECT_GT(delta.changed_nodes, 0u);
  EXPECT_GT(delta.carried_nodes, 0u);

  SnapshotData acc = clone_snapshot(base);
  HeatMap heat;
  const ApplyStats stats = apply_delta(acc, delta.snapshot, 7, &heat);
  EXPECT_GT(stats.nodes_created, 0u);
  EXPECT_EQ(stats.visits_added, delta.visits_delta);
  for (const auto& [node, epoch] : heat) EXPECT_EQ(epoch, 7u);

  EXPECT_EQ(snapshot::encode_snapshot(acc), snapshot::encode_snapshot(cur));
}

TEST(IngestDelta, RebaseAgainstNullIsTheFullSnapshot) {
  const SnapshotData cur = capture(1);
  const DeltaResult delta = subtract_snapshot(cur, nullptr);
  EXPECT_EQ(snapshot::encode_snapshot(delta.snapshot),
            snapshot::encode_snapshot(cur));
  EXPECT_EQ(delta.carried_nodes, 0u);
}

TEST(IngestDelta, ExtremaSurviveDeltaEncodingExactly) {
  const SnapshotData base = capture(0);
  const SnapshotData cur = capture(1);
  SnapshotData acc = clone_snapshot(base);
  const DeltaResult delta = subtract_snapshot(cur, &base);
  apply_delta(acc, delta.snapshot, 1, nullptr);
  // Stage 1 lowered the min to 30 and raised the max to 70; a naive
  // "difference the stats" scheme would lose both.
  EXPECT_EQ(acc.profile.implicit_root->visit_stats.min, 30);
  EXPECT_EQ(acc.profile.implicit_root->visit_stats.max, 70);
  EXPECT_EQ(acc.profile.implicit_root->visit_stats.count,
            cur.profile.implicit_root->visit_stats.count);
  EXPECT_EQ(acc.profile.implicit_root->visit_stats.sum,
            cur.profile.implicit_root->visit_stats.sum);
}

TEST(IngestDelta, ProvisionalInProgressStatsRoundTripExactly) {
  // Real producers account in-progress visits provisionally: between
  // two captures sum can grow with zero new completions, and min can
  // RISE once a long-running visit completes and its final duration
  // replaces the provisional elapsed-so-far sample.  Neither fits a
  // per-field difference encoding, so the delta must carry the whole
  // accumulator and apply must replace it.
  const SnapshotData base = capture(0);
  SnapshotData cur = capture(0);
  CallNode* root = cur.profile.implicit_root;
  root->visit_stats.sum = 300;  // grew, count unchanged
  root->visit_stats.min = 145;  // rose past the provisional 40
  root->visit_stats.max = 155;
  root->inclusive = 310;  // inclusive stays monotone

  const DeltaResult delta = subtract_snapshot(cur, &base);
  SnapshotData acc = clone_snapshot(base);
  apply_delta(acc, delta.snapshot, 1, nullptr);
  EXPECT_EQ(snapshot::encode_snapshot(acc), snapshot::encode_snapshot(cur));
  EXPECT_EQ(acc.profile.implicit_root->visit_stats.sum, 300);
  EXPECT_EQ(acc.profile.implicit_root->visit_stats.min, 145);
}

TEST(IngestDelta, ScalarsAreReplacedNotSummed) {
  const SnapshotData base = capture(0);
  const SnapshotData cur = capture(1);
  SnapshotData acc = clone_snapshot(base);
  const DeltaResult delta = subtract_snapshot(cur, &base);
  apply_delta(acc, delta.snapshot, 1, nullptr);
  EXPECT_EQ(acc.profile.total_task_switches, 9u);
  EXPECT_EQ(acc.profile.max_concurrent_any_thread, 2u);
  EXPECT_EQ(acc.meta.flush_seq, 2u);
}

TEST(IngestDelta, NonMonotoneCaptureIsRejected) {
  const SnapshotData base = capture(1);
  const SnapshotData cur = capture(0);  // earlier capture: counters shrank
  EXPECT_THROW((void)subtract_snapshot(cur, &base), SnapshotError);
}

TEST(IngestDelta, MismatchedRegistryPrefixIsRejected) {
  const SnapshotData cur = capture(0);
  SnapshotData base;
  base.registry = std::make_unique<RegionRegistry>();
  base.registry->register_region("stranger", RegionType::kFunction);
  base.profile.thread_count = 1;
  base.profile.max_concurrent_per_thread = {1};
  EXPECT_THROW((void)subtract_snapshot(cur, &base), SnapshotError);
}

TEST(IngestDelta, MassHelpersSumEveryTree) {
  const SnapshotData cur = capture(1);
  // implicit_root 5 + worker 1 + grand 3 = 9 visits.
  EXPECT_EQ(total_visits(cur.profile), 9u);
  EXPECT_EQ(total_root_inclusive(cur.profile), 260);
}

// --- Eviction ---------------------------------------------------------------

std::vector<std::uint8_t> delta_frame_bytes(std::uint64_t seq,
                                            std::uint64_t base_seq,
                                            bool rebase,
                                            const SnapshotData& snap) {
  DeltaFrame frame;
  frame.seq = seq;
  frame.base_seq = base_seq;
  frame.rebase = rebase;
  frame.snapshot = snapshot::encode_snapshot(snap);
  return encode_delta(frame);
}

TEST(IngestEviction, ColdSubtreesFoldIntoStubsMassConserved) {
  const SnapshotData early = capture(0);
  const SnapshotData late = capture(1);

  Session session(1, "t");
  session.consume(encode_hello({kProtocolVersion, 42, "p"}));
  session.set_apply_epoch(1);
  session.consume(delta_frame_bytes(1, 0, true, early));
  session.set_apply_epoch(2);
  const DeltaResult delta = subtract_snapshot(late, &early);
  session.consume(delta_frame_bytes(2, 1, false, delta.snapshot));
  (void)session.take_output();
  ASSERT_EQ(session.counters().deltas_applied, 2u);

  const std::uint64_t visits_before =
      total_visits(session.cumulative()->profile);
  const Ticks inclusive_before =
      total_root_inclusive(session.cumulative()->profile);
  const std::size_t bytes_before = session.live_node_bytes();

  // Epoch-2 delta touched implicit_root, worker, grand — all hot.
  EXPECT_EQ(session.evict_cold(2).subtrees, 0u);

  // With everything stamped cold, the maximal non-root subtrees fold.
  const Session::EvictResult evicted = session.evict_cold(3);
  EXPECT_GT(evicted.subtrees, 0u);
  EXPECT_GT(evicted.nodes, 0u);
  EXPECT_GT(evicted.visits, 0u);

  EXPECT_EQ(total_visits(session.cumulative()->profile), visits_before);
  EXPECT_EQ(total_root_inclusive(session.cumulative()->profile),
            inclusive_before);
  EXPECT_LT(session.live_node_bytes(), bytes_before);

  // The stub is visible, named, and carries the folded mass.
  const CallNode* root = session.cumulative()->profile.implicit_root;
  ASSERT_NE(root, nullptr);
  const RegionRegistry& registry = *session.cumulative()->registry;
  bool found_stub = false;
  for (const CallNode* child = root->first_child; child != nullptr;
       child = child->next_sibling) {
    if (registry.info(child->region).name == "[evicted]") {
      found_stub = true;
      EXPECT_GT(child->visits, 0u);
    }
  }
  EXPECT_TRUE(found_stub);

  // Eviction is idempotent at the same cutoff: stubs are never re-evicted.
  EXPECT_EQ(session.evict_cold(3).subtrees, 0u);
  EXPECT_EQ(total_visits(session.cumulative()->profile), visits_before);
}

TEST(IngestEviction, StreamingContinuesAfterEviction) {
  // A delta arriving after its target subtree was evicted recreates the
  // path; totals then double-count nothing because the delta carries
  // only differences.
  const SnapshotData early = capture(0);
  const SnapshotData late = capture(1);

  Session session(1, "t");
  session.consume(encode_hello({kProtocolVersion, 42, "p"}));
  session.set_apply_epoch(1);
  session.consume(delta_frame_bytes(1, 0, true, early));
  (void)session.take_output();
  (void)session.evict_cold(2);

  session.set_apply_epoch(2);
  const DeltaResult delta = subtract_snapshot(late, &early);
  session.consume(delta_frame_bytes(2, 1, false, delta.snapshot));
  const auto output = session.take_output();
  FrameReader reader("t");
  reader.feed(output);
  const auto reply = reader.next();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kDeltaAck);

  // Visit mass equals the late capture's regardless of the eviction.
  EXPECT_EQ(total_visits(session.cumulative()->profile),
            total_visits(late.profile));
  EXPECT_EQ(total_root_inclusive(session.cumulative()->profile),
            total_root_inclusive(late.profile));
}

}  // namespace
}  // namespace taskprof::ingest
