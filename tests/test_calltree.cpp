#include "profile/calltree.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace taskprof {
namespace {

class CallTreeTest : public ::testing::Test {
 protected:
  NodePool pool_;
};

TEST_F(CallTreeTest, AllocateRoot) {
  CallNode* root = pool_.allocate(1, kNoParameter, false, nullptr);
  EXPECT_EQ(root->region, 1u);
  EXPECT_EQ(root->parent, nullptr);
  EXPECT_EQ(root->first_child, nullptr);
  EXPECT_EQ(root->visits, 0u);
  EXPECT_EQ(pool_.allocated(), 1u);
}

TEST_F(CallTreeTest, ChildrenPreserveInsertionOrder) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* a = pool_.allocate(1, kNoParameter, false, root);
  CallNode* b = pool_.allocate(2, kNoParameter, false, root);
  CallNode* c = pool_.allocate(3, kNoParameter, false, root);
  EXPECT_EQ(root->first_child, a);
  EXPECT_EQ(a->next_sibling, b);
  EXPECT_EQ(b->next_sibling, c);
  EXPECT_EQ(c->next_sibling, nullptr);
  EXPECT_EQ(root->child_count(), 3u);
}

TEST_F(CallTreeTest, FindChildMatchesFullIdentity) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* plain = pool_.allocate(1, kNoParameter, false, root);
  CallNode* stub = pool_.allocate(1, kNoParameter, true, root);
  CallNode* param = pool_.allocate(1, 7, false, root);
  EXPECT_EQ(find_child(root, 1), plain);
  EXPECT_EQ(find_child(root, 1, kNoParameter, true), stub);
  EXPECT_EQ(find_child(root, 1, 7), param);
  EXPECT_EQ(find_child(root, 2), nullptr);
}

TEST_F(CallTreeTest, FindOrCreateReusesExisting) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* a = find_or_create_child(pool_, root, 5);
  CallNode* b = find_or_create_child(pool_, root, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool_.allocated(), 2u);
}

TEST_F(CallTreeTest, ExclusiveSubtractsChildren) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  root->inclusive = 100;
  CallNode* a = pool_.allocate(1, kNoParameter, false, root);
  a->inclusive = 30;
  CallNode* b = pool_.allocate(2, kNoParameter, false, root);
  b->inclusive = 50;
  EXPECT_EQ(root->children_inclusive(), 80);
  EXPECT_EQ(root->exclusive(), 20);
}

TEST_F(CallTreeTest, ReleaseSubtreeRecyclesNodes) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* child = pool_.allocate(1, kNoParameter, false, root);
  pool_.allocate(2, kNoParameter, false, child);
  pool_.allocate(3, kNoParameter, false, child);
  EXPECT_EQ(pool_.allocated(), 4u);

  pool_.release_subtree(child);
  EXPECT_EQ(pool_.free_count(), 3u);
  EXPECT_EQ(root->first_child, nullptr);

  // New allocations come from the free list, not fresh memory.
  pool_.allocate(7, kNoParameter, false, root);
  pool_.allocate(8, kNoParameter, false, root);
  EXPECT_EQ(pool_.allocated(), 4u);
  EXPECT_EQ(pool_.free_count(), 1u);
}

TEST_F(CallTreeTest, ReleaseMiddleSiblingKeepsListIntact) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* a = pool_.allocate(1, kNoParameter, false, root);
  CallNode* b = pool_.allocate(2, kNoParameter, false, root);
  CallNode* c = pool_.allocate(3, kNoParameter, false, root);
  pool_.release_subtree(b);
  EXPECT_EQ(root->first_child, a);
  EXPECT_EQ(a->next_sibling, c);
  EXPECT_EQ(root->child_count(), 2u);
}

TEST_F(CallTreeTest, RecycledNodesAreZeroed) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  root->inclusive = 999;
  root->visits = 5;
  pool_.release_subtree(root);
  CallNode* fresh = pool_.allocate(4, kNoParameter, false, nullptr);
  EXPECT_EQ(fresh->inclusive, 0);
  EXPECT_EQ(fresh->visits, 0u);
  EXPECT_EQ(fresh->first_child, nullptr);
}

TEST_F(CallTreeTest, MergeAggregatesMetricsAndStructure) {
  // dst:  root(10) -> a(5)
  CallNode* dst = pool_.allocate(0, kNoParameter, false, nullptr);
  dst->visits = 1;
  dst->inclusive = 10;
  dst->visit_stats.add(10);
  CallNode* dst_a = pool_.allocate(1, kNoParameter, false, dst);
  dst_a->visits = 1;
  dst_a->inclusive = 5;
  dst_a->visit_stats.add(5);

  // src:  root(20) -> a(8), b(2)
  NodePool src_pool;
  CallNode* src = src_pool.allocate(0, kNoParameter, false, nullptr);
  src->visits = 1;
  src->inclusive = 20;
  src->visit_stats.add(20);
  CallNode* src_a = src_pool.allocate(1, kNoParameter, false, src);
  src_a->visits = 2;
  src_a->inclusive = 8;
  src_a->visit_stats.add(3);
  src_a->visit_stats.add(5);
  CallNode* src_b = src_pool.allocate(2, kNoParameter, false, src);
  src_b->visits = 1;
  src_b->inclusive = 2;
  src_b->visit_stats.add(2);

  merge_subtree(pool_, dst, src);

  EXPECT_EQ(dst->visits, 2u);
  EXPECT_EQ(dst->inclusive, 30);
  EXPECT_EQ(dst->visit_stats.min, 10);
  EXPECT_EQ(dst->visit_stats.max, 20);
  CallNode* merged_a = find_child(dst, 1);
  ASSERT_NE(merged_a, nullptr);
  EXPECT_EQ(merged_a->visits, 3u);
  EXPECT_EQ(merged_a->inclusive, 13);
  EXPECT_EQ(merged_a->visit_stats.min, 3);
  CallNode* merged_b = find_child(dst, 2);
  ASSERT_NE(merged_b, nullptr);
  EXPECT_EQ(merged_b->inclusive, 2);

  // Source is untouched.
  EXPECT_EQ(src->inclusive, 20);
  EXPECT_EQ(src_a->visits, 2u);
}

TEST_F(CallTreeTest, MergeDistinguishesStubsAndParameters) {
  CallNode* dst = pool_.allocate(0, kNoParameter, false, nullptr);
  NodePool src_pool;
  CallNode* src = src_pool.allocate(0, kNoParameter, false, nullptr);
  src_pool.allocate(1, kNoParameter, false, src)->inclusive = 1;
  src_pool.allocate(1, kNoParameter, true, src)->inclusive = 2;
  src_pool.allocate(1, 9, false, src)->inclusive = 3;
  merge_subtree(pool_, dst, src);
  EXPECT_EQ(dst->child_count(), 3u);
  EXPECT_EQ(find_child(dst, 1)->inclusive, 1);
  EXPECT_EQ(find_child(dst, 1, kNoParameter, true)->inclusive, 2);
  EXPECT_EQ(find_child(dst, 1, 9)->inclusive, 3);
}

TEST_F(CallTreeTest, ForEachNodeVisitsPreorderWithDepth) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* a = pool_.allocate(1, kNoParameter, false, root);
  pool_.allocate(2, kNoParameter, false, a);
  pool_.allocate(3, kNoParameter, false, root);
  std::vector<std::pair<RegionHandle, int>> visited;
  for_each_node(root, [&](const CallNode& node, int depth) {
    visited.emplace_back(node.region, depth);
  });
  const std::vector<std::pair<RegionHandle, int>> expected = {
      {0, 0}, {1, 1}, {2, 2}, {3, 1}};
  EXPECT_EQ(visited, expected);
}

TEST_F(CallTreeTest, SubtreeSizeCounts) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* a = pool_.allocate(1, kNoParameter, false, root);
  pool_.allocate(2, kNoParameter, false, a);
  EXPECT_EQ(subtree_size(root), 3u);
  EXPECT_EQ(subtree_size(nullptr), 0u);
}

TEST_F(CallTreeTest, FindPathWalksRegions) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  CallNode* a = pool_.allocate(1, kNoParameter, false, root);
  CallNode* b = pool_.allocate(2, kNoParameter, false, a);
  CallNode* stub = pool_.allocate(3, kNoParameter, true, b);
  EXPECT_EQ(find_path(root, {1, 2}), b);
  EXPECT_EQ(find_path(root, {1, 2, 3}, /*stub_leaf=*/true), stub);
  EXPECT_EQ(find_path(root, {1, 9}), nullptr);
  EXPECT_EQ(find_path(root, {}), root);
}

TEST_F(CallTreeTest, PoolSurvivesManyChunks) {
  CallNode* root = pool_.allocate(0, kNoParameter, false, nullptr);
  std::vector<CallNode*> nodes;
  for (int i = 0; i < 10'000; ++i) {
    nodes.push_back(
        pool_.allocate(static_cast<RegionHandle>(i + 1), i, false, root));
  }
  EXPECT_EQ(pool_.allocated(), 10'001u);
  // Spot-check that early nodes were not invalidated by chunk growth.
  EXPECT_EQ(nodes[0]->region, 1u);
  EXPECT_EQ(nodes[0]->parameter, 0);
  EXPECT_EQ(nodes[9'999]->region, 10'000u);
  EXPECT_EQ(root->child_count(), 10'000u);
}

}  // namespace
}  // namespace taskprof
