// End-to-end: runtime engines driving the measurement layer through the
// instrumentation adapter.
#include "instrument/instrumentor.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

rt::TaskAttrs attrs_for(RegionHandle region) {
  rt::TaskAttrs attrs;
  attrs.region = region;
  return attrs;
}

/// Total inclusive time of all stub nodes in all implicit trees.
Ticks total_stub_time(const AggregateProfile& profile) {
  Ticks total = 0;
  for_each_node(profile.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) total += node.inclusive;
  });
  return total;
}

Ticks total_task_tree_time(const AggregateProfile& profile) {
  Ticks total = 0;
  for (const CallNode* root : profile.task_roots) total += root->inclusive;
  return total;
}

class InstrumentorTest : public ::testing::Test {
 protected:
  RegionRegistry registry_;
  RegionHandle task_ = registry_.register_region("work_task",
                                                 RegionType::kTask);

  /// A small program: single creator, two-level task tree with taskwaits.
  void run_program(rt::Runtime& runtime) {
    runtime.parallel(3, [this](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      for (int i = 0; i < 6; ++i) {
        ctx.create_task(
            [this](rt::TaskContext& outer) {
              outer.work(2'000);
              outer.create_task([](rt::TaskContext& c) { c.work(1'000); },
                                attrs_for(task_));
              outer.taskwait();
              outer.work(500);
            },
            attrs_for(task_));
      }
      ctx.taskwait();
    });
  }
};

TEST_F(InstrumentorTest, SimProfileStructureMatchesPaperLayout) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_program(sim);
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();

  // Main tree: implicit task -> parallel -> {create nodes, taskwait,
  // implicit barrier}.
  ASSERT_NE(agg.implicit_root, nullptr);
  EXPECT_EQ(registry_.info(agg.implicit_root->region).type,
            RegionType::kImplicitTask);
  CallNode* parallel = find_child(
      const_cast<CallNode*>(agg.implicit_root), instr.parallel_region());
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->visits, 3u);  // one per thread, merged

  CallNode* barrier =
      find_child(parallel, instr.implicit_barrier_region());
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->visits, 3u);

  // The creator's task-creation region is a child of the parallel node.
  const RegionHandle create = instr.create_region_for(task_);
  CallNode* create_node = find_child(parallel, create);
  ASSERT_NE(create_node, nullptr);
  EXPECT_EQ(create_node->visits, 6u);

  // The task construct's merged tree sits beside the main tree and
  // contains taskwait and nested create nodes.
  ASSERT_EQ(agg.task_roots.size(), 1u);
  const CallNode* task_root = agg.task_roots[0];
  EXPECT_EQ(task_root->region, task_);
  EXPECT_EQ(task_root->visits, 12u);  // 6 outer + 6 inner instances
  CallNode* wait_in_task =
      find_child(const_cast<CallNode*>(task_root), instr.taskwait_region());
  ASSERT_NE(wait_in_task, nullptr);
  EXPECT_EQ(wait_in_task->visits, 6u);
  EXPECT_NE(find_child(const_cast<CallNode*>(task_root), create), nullptr);
}

TEST_F(InstrumentorTest, StubTimeEqualsTaskTreeTimeExactly) {
  // Every executed task fragment is timed identically in the implicit
  // tree's stub node and in the instance tree, so the totals must match
  // tick for tick (the conservation law of the paper's design).
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_program(sim);
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();
  EXPECT_EQ(total_stub_time(agg), total_task_tree_time(agg));
  EXPECT_GT(total_stub_time(agg), 0);
}

TEST_F(InstrumentorTest, RealEngineSatisfiesSameInvariants) {
  rt::RealRuntime real;
  Instrumentor instr(registry_);
  real.set_hooks(&instr);
  run_program(real);
  real.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();

  EXPECT_EQ(total_stub_time(agg), total_task_tree_time(agg));
  ASSERT_EQ(agg.task_roots.size(), 1u);
  EXPECT_EQ(agg.task_roots[0]->visits, 12u);

  // No negative exclusive times anywhere (execution-site attribution).
  for_each_node(agg.implicit_root, [](const CallNode& node, int) {
    EXPECT_GE(node.exclusive(), 0) << "negative exclusive in main tree";
  });
  for (const CallNode* root : agg.task_roots) {
    for_each_node(root, [](const CallNode& node, int) {
      EXPECT_GE(node.exclusive(), 0) << "negative exclusive in task tree";
    });
  }
}

TEST_F(InstrumentorTest, SimTimesAreExactlyConserved) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  auto stats = sim.parallel(2, [this](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 4; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(10'000); },
                      attrs_for(task_));
    }
  });
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();

  // Each thread's implicit root spans the whole region: the merged root's
  // inclusive time is bounded by threads * span and is at least the span.
  ASSERT_NE(agg.implicit_root, nullptr);
  EXPECT_GE(agg.implicit_root->inclusive, stats.parallel_ticks);
  EXPECT_LE(agg.implicit_root->inclusive, 2 * stats.parallel_ticks);

  // All 4 tasks' work appears in the merged task tree.
  ASSERT_EQ(agg.task_roots.size(), 1u);
  EXPECT_GE(agg.task_roots[0]->inclusive, 40'000);
}

TEST_F(InstrumentorTest, ConcurrencyMarkResetWorks) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_program(sim);
  const AggregateProfile before = instr.aggregate();
  EXPECT_GE(before.max_concurrent_any_thread, 1u);
  instr.reset_concurrency_marks();
  const AggregateProfile after = instr.aggregate();
  EXPECT_EQ(after.max_concurrent_any_thread, 0u);
  sim.set_hooks(nullptr);
  instr.finalize();
}

TEST_F(InstrumentorTest, MultipleParallelRegionsAccumulate) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_program(sim);
  run_program(sim);
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();
  ASSERT_EQ(agg.task_roots.size(), 1u);
  EXPECT_EQ(agg.task_roots[0]->visits, 24u);
  const CallNode* parallel = find_child(
      const_cast<CallNode*>(agg.implicit_root), instr.parallel_region());
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->visits, 6u);  // 3 threads x 2 regions
}

TEST_F(InstrumentorTest, CreateRegionsAreRegisteredPerConstruct) {
  Instrumentor instr(registry_);
  const RegionHandle other =
      registry_.register_region("other_task", RegionType::kTask);
  const RegionHandle create_a = instr.create_region_for(task_);
  const RegionHandle create_b = instr.create_region_for(other);
  EXPECT_NE(create_a, create_b);
  EXPECT_EQ(instr.create_region_for(task_), create_a);  // cached
  EXPECT_EQ(registry_.info(create_a).name, "create work_task");
  EXPECT_EQ(registry_.info(create_a).type, RegionType::kTaskCreate);
}

TEST_F(InstrumentorTest, DepthLimitBoundsTheProfileSize) {
  const RegionHandle deep_fn =
      registry_.register_region("deep_fn", RegionType::kFunction);
  auto run_with_limit = [&](std::size_t limit) {
    MeasureOptions options;
    options.max_tree_depth = limit;
    rt::SimRuntime sim;
    Instrumentor instr(registry_, options);
    sim.set_hooks(&instr);
    sim.parallel(1, [&](rt::TaskContext& ctx) {
      std::function<void(int)> recurse = [&](int depth) {
        ctx.region_enter(deep_fn);
        ctx.work(100);
        if (depth > 0) recurse(depth - 1);
        ctx.region_exit(deep_fn);
      };
      recurse(50);
    });
    sim.set_hooks(nullptr);
    instr.finalize();
    AggregateProfile agg = instr.aggregate();
    return std::make_pair(subtree_size(agg.implicit_root),
                          agg.total_folded_events);
  };
  const auto [unlimited_nodes, unlimited_folds] = run_with_limit(0);
  const auto [limited_nodes, limited_folds] = run_with_limit(5);
  EXPECT_GT(unlimited_nodes, 50u);
  EXPECT_EQ(unlimited_folds, 0u);
  EXPECT_LE(limited_nodes, 6u);  // implicit root + parallel + 4 levels
  EXPECT_GT(limited_folds, 40u);
}

TEST_F(InstrumentorTest, MemoryStatsTrackPools) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_program(sim);
  sim.set_hooks(nullptr);
  instr.finalize();
  const Instrumentor::MemoryStats stats = instr.memory_stats();
  EXPECT_GT(stats.nodes, 0u);
  EXPECT_EQ(stats.bytes, stats.nodes * sizeof(CallNode));
  // Completed instance trees were recycled: free nodes exist.
  EXPECT_GT(stats.free_nodes, 0u);
  EXPECT_LE(stats.free_nodes, stats.nodes);
}

TEST_F(InstrumentorTest, FanoutDeliversToAllListeners) {
  Instrumentor first(registry_);
  Instrumentor second(registry_);
  rt::FanoutHooks fanout{&first, &second};
  rt::SimRuntime sim;
  sim.set_hooks(&fanout);
  run_program(sim);
  sim.set_hooks(nullptr);
  first.finalize();
  second.finalize();
  const AggregateProfile a = first.aggregate();
  const AggregateProfile b = second.aggregate();
  ASSERT_EQ(a.task_roots.size(), 1u);
  ASSERT_EQ(b.task_roots.size(), 1u);
  EXPECT_EQ(a.task_roots[0]->visits, b.task_roots[0]->visits);
  EXPECT_EQ(a.task_roots[0]->inclusive, b.task_roots[0]->inclusive);
  EXPECT_EQ(subtree_size(a.implicit_root), subtree_size(b.implicit_root));
}

TEST_F(InstrumentorTest, FilteredRegionsFoldIntoParents) {
  const RegionHandle hot =
      registry_.register_region("hot_helper", RegionType::kFunction);
  const RegionHandle kept =
      registry_.register_region("kept_fn", RegionType::kFunction);

  auto run = [&](bool filter) {
    rt::SimRuntime sim;
    Instrumentor instr(registry_);
    if (filter) instr.filter_region(hot);
    sim.set_hooks(&instr);
    sim.parallel(1, [&](rt::TaskContext& ctx) {
      rt::TaskAttrs attrs;
      attrs.region = task_;
      ctx.create_task(
          [&](rt::TaskContext& c) {
            rt::ScopedRegion keep(c, kept);
            for (int i = 0; i < 10; ++i) {
              rt::ScopedRegion inner(c, hot);
              c.work(1'000);
            }
          },
          attrs);
    });
    sim.set_hooks(nullptr);
    instr.finalize();
    return instr.aggregate();
  };

  const AggregateProfile unfiltered = run(false);
  const AggregateProfile filtered = run(true);

  const CallNode* kept_plain = find_child(
      const_cast<CallNode*>(unfiltered.task_roots[0]), kept);
  const CallNode* kept_filtered =
      find_child(const_cast<CallNode*>(filtered.task_roots[0]), kept);
  ASSERT_NE(kept_plain, nullptr);
  ASSERT_NE(kept_filtered, nullptr);
  // Unfiltered: hot_helper is a child holding the 10 us; filtered: no such
  // node, the time folds into kept_fn's exclusive time.
  EXPECT_NE(find_child(const_cast<CallNode*>(kept_plain), hot), nullptr);
  EXPECT_EQ(find_child(const_cast<CallNode*>(kept_filtered), hot), nullptr);
  EXPECT_GE(kept_filtered->exclusive(), 10'000);
  EXPECT_LT(kept_plain->exclusive(), kept_filtered->exclusive());
  // Inclusive time is conserved either way.
  EXPECT_GE(kept_plain->inclusive, 10'000);
  EXPECT_GE(kept_filtered->inclusive, 10'000);
}

using InstrumentorDeathTest = InstrumentorTest;

TEST_F(InstrumentorDeathTest, FilteringAConstructAborts) {
  Instrumentor instr(registry_);
  EXPECT_DEATH(instr.filter_region(instr.taskwait_region()),
               "user function regions");
}

TEST_F(InstrumentorTest, ViewsExposePerThreadProfiles) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_program(sim);
  sim.set_hooks(nullptr);
  instr.finalize();
  const auto views = instr.views();
  EXPECT_EQ(views.size(), 3u);
  for (const auto& view : views) {
    EXPECT_NE(view.implicit_root, nullptr);
  }
  EXPECT_NE(instr.profiler(0), nullptr);
  EXPECT_EQ(instr.profiler(99), nullptr);
}

}  // namespace
}  // namespace taskprof
