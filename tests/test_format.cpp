#include "common/format.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace taskprof {
namespace {

TEST(FormatTicks, PicksNanosecondUnit) {
  EXPECT_EQ(format_ticks(0), "0 ns");
  EXPECT_EQ(format_ticks(999), "999 ns");
}

TEST(FormatTicks, PicksMicrosecondUnit) {
  EXPECT_EQ(format_ticks(1'490), "1.49 us");
  EXPECT_EQ(format_ticks(149'000), "149 us");
}

TEST(FormatTicks, PicksMillisecondUnit) {
  EXPECT_EQ(format_ticks(25'800'000), "25.8 ms");
}

TEST(FormatTicks, PicksSecondUnit) {
  EXPECT_EQ(format_ticks(113'000'000'000LL), "113 s");
  EXPECT_EQ(format_ticks(1'500'000'000LL), "1.50 s");
}

TEST(FormatTicks, NegativeValuesKeepSign) {
  EXPECT_EQ(format_ticks(-5'000'000'000LL), "-5.00 s");
}

TEST(FormatTicks, ThreeSignificantDigits) {
  EXPECT_EQ(format_ticks(12'345), "12.3 us");
  EXPECT_EQ(format_ticks(123'456), "123 us");
}

TEST(FormatSeconds, FixedDecimals) {
  EXPECT_EQ(format_seconds(1'234'000'000LL), "1.234");
  EXPECT_EQ(format_seconds(1'234'000'000LL, 1), "1.2");
}

TEST(FormatPercent, SignsAndDecimals) {
  EXPECT_EQ(format_percent(0.062), "+6.2 %");
  EXPECT_EQ(format_percent(-0.47), "-47.0 %");
  EXPECT_EQ(format_percent(3.10), "+310.0 %");
  EXPECT_EQ(format_percent(0.0), "+0.0 %");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(3'690'000'000ULL), "3,690,000,000");
  EXPECT_EQ(format_count(73'700'000ULL), "73,700,000");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"code", "mean time", "number of tasks"});
  table.add_row({"fib", "1.49 us", "3,690,000,000"});
  table.add_row({"strassen", "149 us", "960,800"});
  const std::string out = table.str();
  EXPECT_NE(out.find("code"), std::string::npos);
  EXPECT_NE(out.find("strassen"), std::string::npos);
  // Right-aligned numeric columns: the shorter count is padded.
  EXPECT_NE(out.find("      960,800"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, EveryRowSameWidth) {
  TextTable table({"a", "b"});
  table.add_row({"xxxx", "1"});
  table.add_row({"y", "22"});
  const std::string out = table.str();
  std::size_t first_len = 0;
  std::size_t pos = 0;
  std::size_t line = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::size_t len = eol - pos;
    if (line == 0) first_len = len;
    if (line != 1) {  // separator line may differ
      EXPECT_LE(len, first_len + 2);
    }
    pos = eol + 1;
    ++line;
  }
  EXPECT_EQ(line, 4u);  // header + separator + 2 rows
}

}  // namespace
}  // namespace taskprof
