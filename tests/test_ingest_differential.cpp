// Differential test per BOTS kernel: the profile streamed through the
// daemon as a chain of delta snapshots is byte-identical to the locally
// aggregated one — same .tpsnap bytes, same rendered report — and with
// an aggressive memory budget the evicted aggregate still conserves
// every visit and every root tick.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "ingest/client.hpp"
#include "ingest/daemon.hpp"
#include "ingest/delta.hpp"
#include "instrument/instrumentor.hpp"
#include "measure/aggregate.hpp"
#include "report/text_report.hpp"
#include "rt/sim_runtime.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {
namespace {

using snapshot::SnapshotData;

struct KernelRun {
  RegionRegistry registry;
  rt::SimRuntime runtime;
  std::unique_ptr<Instrumentor> instr;  ///< owns the trees the views lend
  std::vector<ThreadProfileView> views;
};

/// Run one BOTS kernel under the simulated runtime and keep the
/// per-thread views: their prefix aggregations form a pointwise
/// monotone chain of cumulative profiles, exactly what a producer
/// flushing mid-run would capture.
std::unique_ptr<KernelRun> run_kernel(const std::string& name, int threads) {
  auto run = std::make_unique<KernelRun>();
  run->instr = std::make_unique<Instrumentor>(run->registry);
  rt::FanoutHooks fanout({run->instr.get()});
  run->runtime.set_hooks(&fanout);
  auto kernel = bots::make_kernel(name);
  bots::KernelConfig config;
  config.threads = threads;
  config.size = bots::SizeClass::kTest;
  const bots::KernelResult result =
      kernel->run(run->runtime, run->registry, config);
  EXPECT_TRUE(result.ok) << name;
  run->runtime.set_hooks(nullptr);
  run->instr->finalize();
  run->views = run->instr->views();
  return run;
}

/// Cumulative capture after the first `upto` threads' work, as the
/// owning SnapshotData the client streams.
SnapshotData capture_prefix(const KernelRun& run, std::size_t upto,
                            std::uint64_t flush_seq) {
  const std::vector<ThreadProfileView> prefix(run.views.begin(),
                                              run.views.begin() + upto);
  const AggregateProfile profile = aggregate_profiles(prefix);
  snapshot::SnapshotMeta meta;
  meta.flush_seq = flush_seq;
  meta.process_id = 77;
  const std::vector<std::uint8_t> bytes =
      snapshot::encode_snapshot(profile, run.registry, meta, nullptr);
  return snapshot::decode_snapshot(bytes, "capture");
}

std::string socket_path(const std::string& name) {
  return testing::TempDir() + "taskprofd_diff_" + name + ".scratch.sock";
}

class IngestDifferential : public testing::TestWithParam<const char*> {};

TEST_P(IngestDifferential, StreamedAggregateIsByteIdenticalToLocal) {
  const std::string name = GetParam();
  const auto run = run_kernel(name, 4);
  ASSERT_EQ(run->views.size(), 4u);

  DaemonOptions options;
  options.socket_path = socket_path(name);
  options.shards = 1;
  IngestDaemon daemon(options);
  daemon.start();

  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.process_id = 77;
  copts.producer_name = name;
  IngestClient client(copts);

  // Flush after every thread's worth of work: rebase, then real deltas.
  std::uint64_t delta_bytes = 0;
  std::uint64_t rebase_bytes = 0;
  for (std::size_t k = 1; k <= run->views.size(); ++k) {
    const SnapshotData cum = capture_prefix(*run, k, k);
    const SendResult sent = client.send_snapshot(cum);
    EXPECT_EQ(sent.rebased, k == 1) << name << " flush " << k;
    if (sent.rebased) {
      rebase_bytes += sent.wire_bytes;
    } else {
      delta_bytes += sent.wire_bytes;
    }
  }
  client.finish(nullptr);

  const SnapshotData local = capture_prefix(*run, run->views.size(), 4);
  const std::vector<std::uint8_t> local_bytes =
      snapshot::encode_snapshot(local);

  // Byte identity end to end: export AND the wire report agree with the
  // locally aggregated snapshot, and the rendered reports match.
  EXPECT_EQ(snapshot::encode_snapshot(daemon.export_aggregate()), local_bytes)
      << name;
  EXPECT_EQ(query_report(options.socket_path, ReportKind::kSnapshot),
            local_bytes)
      << name;
  const auto report = query_report(options.socket_path, ReportKind::kText);
  EXPECT_EQ(std::string(report.begin(), report.end()),
            render_profile(local.profile, *local.registry))
      << name;

  // The whole point of deltas: follow-up flushes are cheaper than the
  // rebase for every kernel whose profile stabilizes (all of BOTS).
  EXPECT_GT(rebase_bytes, 0u);
  EXPECT_GT(delta_bytes, 0u);
  daemon.stop();
}

TEST_P(IngestDifferential, EvictedAggregateConservesTotalMass) {
  const std::string name = GetParam();
  const auto run = run_kernel(name, 4);
  ASSERT_EQ(run->views.size(), 4u);

  DaemonOptions options;
  options.socket_path = socket_path(name + "_evict");
  options.shards = 1;
  options.memory_budget_bytes = 1;  // force eviction after every delta
  IngestDaemon daemon(options);
  daemon.start();

  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.process_id = 77;
  IngestClient client(copts);
  for (std::size_t k = 1; k <= run->views.size(); ++k) {
    (void)client.send_snapshot(capture_prefix(*run, k, k));
  }
  client.finish(nullptr);

  const SnapshotData local = capture_prefix(*run, run->views.size(), 4);
  const SnapshotData exported = daemon.export_aggregate();
  const DaemonStats stats = daemon.stats();

  // Path detail was folded away, but not one visit or tick went missing.
  EXPECT_GT(stats.evicted_subtrees, 0u) << name;
  EXPECT_GT(stats.evicted_nodes, 0u) << name;
  EXPECT_EQ(total_visits(exported.profile), total_visits(local.profile))
      << name;
  EXPECT_EQ(total_root_inclusive(exported.profile),
            total_root_inclusive(local.profile))
      << name;
  daemon.stop();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, IngestDifferential,
                         testing::Values("alignment", "fft", "fib",
                                         "floorplan", "health", "nqueens",
                                         "sort", "sparselu", "strassen"),
                         [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace taskprof::ingest
