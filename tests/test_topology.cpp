// Topology model and hierarchical victim selection (rt/topology.hpp,
// DESIGN.md §15).
//
// Three layers of evidence that topology awareness is a pure scheduling
// optimization:
//  1. unit tests of the Topology value type (spec parsing, domain
//     mapping) and of the seeded victim-rotation streams (same seed =>
//     same victim sequence — the replay side of the seed protocol
//     extends to hierarchical stealing);
//  2. profile-projection equivalence: on both engines, the hierarchical
//     policy must attribute exactly what the flat policy attributes —
//     topology changes who runs a task, never what the profiler reports;
//  3. the 256-worker scaling study's precondition: every BOTS kernel
//     runs on a simulated 4x64 machine with a finalized profile that
//     passes every check_profile() invariant.
#include "rt/topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "check/differential.hpp"
#include "check/invariants.hpp"
#include "instrument/instrumentor.hpp"
#include "profile/region.hpp"
#include "rt/hooks.hpp"
#include "rt/real_runtime.hpp"
#include "rt/schedule_policy.hpp"
#include "rt/sim_runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof {
namespace {

// ---------------------------------------------------------------------
// Layer 1: the Topology value type.
// ---------------------------------------------------------------------

TEST(TopologyParse, AcceptsDomainsByWorkers) {
  const auto topo = rt::Topology::parse("4x16");
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->domains, 4u);
  EXPECT_EQ(topo->workers_per_domain, 16u);
  EXPECT_EQ(topo->total_workers(), 64u);
  EXPECT_TRUE(topo->multi_domain());

  const auto upper = rt::Topology::parse("2X4");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(upper->domains, 2u);
  EXPECT_EQ(upper->workers_per_domain, 4u);

  const auto single = rt::Topology::parse("1x8");
  ASSERT_TRUE(single.has_value());
  EXPECT_FALSE(single->multi_domain());
}

TEST(TopologyParse, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "x", "4", "4x", "x16", "0x4", "4x0", "4x16x2", "4x16 ",
        " 4x16", "4x16junk", "-1x4", "4x-1", "axb", "5000x2", "2x5000"}) {
    EXPECT_FALSE(rt::Topology::parse(bad).has_value()) << bad;
  }
}

TEST(TopologyDomainOf, MapsContiguousBlocks) {
  rt::Topology topo;
  topo.domains = 4;
  topo.workers_per_domain = 16;
  EXPECT_EQ(topo.domain_of(0), 0u);
  EXPECT_EQ(topo.domain_of(15), 0u);
  EXPECT_EQ(topo.domain_of(16), 1u);
  EXPECT_EQ(topo.domain_of(63), 3u);
  // Workers past the machine wrap instead of inventing a fifth domain.
  EXPECT_EQ(topo.domain_of(64), 0u);

  // Degenerate configurations collapse to one domain.
  rt::Topology flat;
  EXPECT_EQ(flat.domain_of(123), 0u);
  rt::Topology zero_width;
  zero_width.domains = 4;
  zero_width.workers_per_domain = 0;
  EXPECT_EQ(zero_width.domain_of(123), 0u);
}

/// Same seed => same victim sequence.  The hierarchical steal rotations
/// draw from the same seeded ScheduleStream protocol as every other
/// perturbation point, so a recorded seed replays the exact probe order.
TEST(TopologyVictims, SameSeedSameRotationSequence) {
  const rt::SchedulePolicy a(1234);
  const rt::SchedulePolicy b(1234);
  const rt::SchedulePolicy other(99);

  for (ThreadId tid = 0; tid < 4; ++tid) {
    rt::ScheduleStream sa = a.stream(tid);
    rt::ScheduleStream sb = b.stream(tid);
    rt::ScheduleStream sc = other.stream(tid);
    std::vector<std::uint64_t> da;
    std::vector<std::uint64_t> db;
    std::vector<std::uint64_t> dc;
    for (int i = 0; i < 256; ++i) {
      da.push_back(sa.victim_rotation(64));
      db.push_back(sb.victim_rotation(64));
      dc.push_back(sc.victim_rotation(64));
    }
    EXPECT_EQ(da, db) << "tid " << tid;
    EXPECT_NE(da, dc) << "tid " << tid;  // different seed, different order
  }

  // A detached stream (no policy) is the neutral rotation everywhere.
  rt::ScheduleStream detached;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(detached.victim_rotation(64), 0u);
  }
}

// ---------------------------------------------------------------------
// Layers 2/3: whole-engine behaviour.
// ---------------------------------------------------------------------

/// One instrumented kernel run (the registry is not movable, so results
/// are filled in place).
struct Measured {
  RegionRegistry registry;
  bots::KernelResult result;
  telemetry::Snapshot snapshot;
  AggregateProfile profile;
};

void run_kernel(Measured& out, rt::Runtime& runtime,
                const std::string& kernel_name, int threads) {
  auto kernel = bots::make_kernel(kernel_name);
  ASSERT_NE(kernel, nullptr) << kernel_name;
  bots::KernelConfig config;
  config.threads = threads;
  config.size = bots::SizeClass::kTest;

  Instrumentor instr(out.registry);
  telemetry::Registry telem;
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  runtime.set_telemetry(&telem);
  out.result = kernel->run(runtime, out.registry, config);
  runtime.set_hooks(nullptr);
  runtime.set_telemetry(nullptr);
  instr.finalize();
  out.profile = instr.aggregate();
  out.snapshot = telem.snapshot();
}

check::ProfileProjection project(const Measured& m, const char* label) {
  check::ProfileProjection p =
      check::project_profile(m.profile, m.registry, m.result.stats);
  p.engine = label;
  return p;
}

void expect_equivalent(const Measured& flat, const Measured& hier,
                       const char* what) {
  EXPECT_EQ(flat.result.checksum, hier.result.checksum) << what;
  const std::vector<std::string> diffs =
      check::diff_projections(project(flat, "flat"), project(hier, "hier"));
  std::string joined;
  for (const std::string& d : diffs) joined += d + "\n";
  EXPECT_TRUE(diffs.empty()) << what << ":\n" << joined;
}

rt::Topology machine(std::uint32_t domains, std::uint32_t workers,
                     bool hierarchical) {
  rt::Topology topo;
  topo.domains = domains;
  topo.workers_per_domain = workers;
  topo.hierarchical = hierarchical;
  return topo;
}

/// A single-domain topology is defined to be the pre-topology engine:
/// same virtual span to the tick, same profile.
TEST(TopologySim, SingleDomainIsIdenticalToDefault) {
  Measured base;
  rt::SimRuntime plain;
  run_kernel(base, plain, "fib", /*threads=*/8);
  ASSERT_TRUE(base.result.ok) << base.result.check;

  Measured single;
  rt::SimConfig config;
  config.topology = machine(1, 8, /*hierarchical=*/true);
  rt::SimRuntime topo_rt(config);
  run_kernel(single, topo_rt, "fib", /*threads=*/8);
  ASSERT_TRUE(single.result.ok) << single.result.check;

  EXPECT_EQ(base.result.stats.parallel_ticks,
            single.result.stats.parallel_ticks);
  expect_equivalent(base, single, "sim 1-domain vs default");
}

/// The victim policy changes which worker takes a task and what that
/// take costs — never what the profiler attributes.
TEST(TopologySim, HierarchicalProjectionEqualsFlat) {
  for (const char* name : {"fib", "nqueens", "sparselu"}) {
    SCOPED_TRACE(name);

    Measured flat;
    rt::SimConfig flat_config;
    flat_config.topology = machine(2, 4, /*hierarchical=*/false);
    rt::SimRuntime flat_rt(flat_config);
    run_kernel(flat, flat_rt, name, /*threads=*/8);
    ASSERT_TRUE(flat.result.ok) << flat.result.check;

    Measured hier;
    rt::SimConfig hier_config;
    hier_config.topology = machine(2, 4, /*hierarchical=*/true);
    rt::SimRuntime hier_rt(hier_config);
    run_kernel(hier, hier_rt, name, /*threads=*/8);
    ASSERT_TRUE(hier.result.ok) << hier.result.check;

    expect_equivalent(flat, hier, name);
  }
}

/// The scaling study's precondition: every BOTS kernel runs at 256
/// virtual workers on a 4x64 machine and produces a finalized profile
/// that passes every structural, conservation, and telemetry invariant.
TEST(TopologySim, AllKernels256WorkersPassProfileInvariants) {
  for (const auto& kernel : bots::make_all_kernels()) {
    const std::string name(kernel->name());
    SCOPED_TRACE(name);

    Measured m;
    rt::SimConfig config;
    config.topology = machine(4, 64, /*hierarchical=*/true);
    rt::SimRuntime runtime(config);
    run_kernel(m, runtime, name, /*threads=*/256);
    ASSERT_TRUE(m.result.ok) << m.result.check;

    const check::InvariantReport report = check::check_profile(
        m.profile, m.registry, &m.result.stats, &m.snapshot);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_GT(report.nodes_checked, 0u);
  }
}

/// Real engine: hierarchical victim selection with batched remote
/// steals must be projection-equal to the flat default on real threads.
TEST(TopologyReal, HierarchicalProjectionEqualsFlat) {
  for (const char* name : {"fib", "nqueens"}) {
    SCOPED_TRACE(name);

    Measured flat;
    rt::RealRuntime flat_rt;  // default: one domain, flat stealing
    run_kernel(flat, flat_rt, name, /*threads=*/4);
    ASSERT_TRUE(flat.result.ok) << flat.result.check;

    Measured hier;
    rt::RealConfig config;
    config.topology = machine(2, 2, /*hierarchical=*/true);
    rt::RealRuntime hier_rt(config);
    run_kernel(hier, hier_rt, name, /*threads=*/4);
    ASSERT_TRUE(hier.result.ok) << hier.result.check;

    expect_equivalent(flat, hier, name);
  }
}

/// Seeded perturbation immunity: rotating the hierarchical probe order
/// with different seeds must not change the finalized profile — victim
/// choice decides placement and timing, not attribution.
TEST(TopologyReal, HierarchicalIsImmuneToSchedulePerturbation) {
  check::ProfileProjection reference;
  std::uint64_t reference_checksum = 0;
  bool have_reference = false;

  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const rt::SchedulePolicy policy(seed);
    rt::RealConfig config;
    config.topology = machine(2, 2, /*hierarchical=*/true);
    config.policy = &policy;
    rt::RealRuntime runtime(config);

    Measured m;
    run_kernel(m, runtime, "fib", /*threads=*/4);
    ASSERT_TRUE(m.result.ok) << m.result.check;

    check::ProfileProjection p = project(m, "perturbed");
    if (!have_reference) {
      reference = p;
      reference.engine = "reference";
      reference_checksum = m.result.checksum;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(m.result.checksum, reference_checksum);
    const std::vector<std::string> diffs =
        check::diff_projections(reference, p);
    std::string joined;
    for (const std::string& d : diffs) joined += d + "\n";
    EXPECT_TRUE(diffs.empty()) << joined;
  }
}

}  // namespace
}  // namespace taskprof
