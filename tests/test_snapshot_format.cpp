// Wire-format primitives (src/snapshot/format): varint/zigzag canonical
// round trips, the CRC-32 check vector, the typed error taxonomy at the
// file level, and the atomicity of the file writer.
#include "snapshot/format.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace taskprof::snapshot {
namespace {

Decoder decoder_over(const Encoder& enc) {
  return Decoder(enc.buffer(), "<test>", Errc::kMalformed);
}

TEST(SnapshotFormat, VarintRoundTripsCanonically) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) {
    Encoder enc;
    enc.varint(v);
    Decoder dec = decoder_over(enc);
    EXPECT_EQ(dec.varint(), v);
    EXPECT_EQ(dec.remaining(), 0u);
    // Canonical length: ceil(bits/7), at least one byte.
    std::size_t expect = 1;
    for (std::uint64_t rest = v >> 7; rest != 0; rest >>= 7) ++expect;
    EXPECT_EQ(enc.size(), expect) << v;
  }
}

TEST(SnapshotFormat, SvarintRoundTripsExtremes) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -64,
                                 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t v : values) {
    Encoder enc;
    enc.svarint(v);
    Decoder dec = decoder_over(enc);
    EXPECT_EQ(dec.svarint(), v);
  }
}

TEST(SnapshotFormat, NonMinimalVarintIsRejected) {
  // 0x80 0x00 decodes to 0 but is not the canonical single-byte form.
  const std::vector<std::uint8_t> padded = {0x80, 0x00};
  Decoder dec(padded, "<test>", Errc::kMalformed);
  try {
    (void)dec.varint();
    FAIL() << "non-minimal varint accepted";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), Errc::kMalformed);
  }
}

TEST(SnapshotFormat, OverlongVarintIsRejected) {
  // Eleven continuation bytes: more than 64 bits of payload.
  const std::vector<std::uint8_t> overlong(11, 0xFF);
  Decoder dec(overlong, "<test>", Errc::kMalformed);
  EXPECT_THROW((void)dec.varint(), SnapshotError);
}

TEST(SnapshotFormat, Crc32MatchesCheckVector) {
  const char* vector = "123456789";
  const auto* data = reinterpret_cast<const std::uint8_t*>(vector);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(data, 9)), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(SnapshotFormat, DecoderOverrunUsesConfiguredErrc) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  Decoder truncated(three, "<test>", Errc::kTruncated);
  try {
    (void)truncated.u32();
    FAIL() << "overrun not detected";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), Errc::kTruncated);
  }
  Decoder malformed(three, "<test>", Errc::kMalformed);
  EXPECT_THROW((void)malformed.u64(), SnapshotError);
}

TEST(SnapshotFormat, StringLimitIsTyped) {
  Encoder enc;
  enc.str("hello world");
  Decoder dec = decoder_over(enc);
  try {
    (void)dec.str(/*max_size=*/4);
    FAIL() << "limit not enforced";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), Errc::kLimit);
  }
}

TEST(SnapshotFormat, ErrcNamesAreStable) {
  EXPECT_EQ(errc_name(Errc::kBadMagic), "bad-magic");
  EXPECT_EQ(errc_name(Errc::kBadCrc), "bad-crc");
  EXPECT_EQ(errc_name(Errc::kFutureVersion), "future-version");
}

TEST(SnapshotFormat, ErrorMessageCarriesOriginAndClass) {
  const SnapshotError error(Errc::kTruncated, "a.tpsnap", "ends early");
  const std::string what = error.what();
  EXPECT_NE(what.find("a.tpsnap"), std::string::npos);
  EXPECT_NE(what.find("truncated"), std::string::npos);
  EXPECT_NE(what.find("ends early"), std::string::npos);
}

TEST(SnapshotFormat, AtomicWriteLeavesNoTempFile) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "taskprof_format_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "out.bin").string();
  const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF};
  atomic_write_file(path, payload);
  // Overwrite through the same path: the reader can only ever see a
  // complete file.
  const std::vector<std::uint8_t> second = {1, 2, 3};
  atomic_write_file(path, second);
  EXPECT_EQ(std::filesystem::file_size(path), second.size());
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u) << "temp file left behind";
  std::filesystem::remove_all(dir);
}

TEST(SnapshotFormat, AtomicWriteFailureIsTypedIo) {
  try {
    atomic_write_file("/nonexistent-dir/x/y.tpsnap", {{1}});
    FAIL() << "write into a missing directory succeeded";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), Errc::kIo);
  }
}

TEST(SnapshotFormat, ReadMissingFileIsTypedIo) {
  try {
    (void)read_snapshot_file("/nonexistent.tpsnap");
    FAIL() << "missing file read succeeded";
  } catch (const SnapshotError& error) {
    EXPECT_EQ(error.code(), Errc::kIo);
  }
}

}  // namespace
}  // namespace taskprof::snapshot
