#include "fiber/fiber.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace taskprof {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  int value = 0;
  Fiber fiber([&value] { value = 42; });
  EXPECT_FALSE(fiber.finished());
  fiber.resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(value, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> order;
  Fiber fiber([&order] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
    Fiber::yield();
    order.push_back(5);
  });
  fiber.resume();
  order.push_back(2);
  fiber.resume();
  order.push_back(4);
  EXPECT_FALSE(fiber.finished());
  fiber.resume();
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, LocalStateSurvivesYield) {
  int sum = 0;
  Fiber fiber([&sum] {
    int local = 10;
    Fiber::yield();
    local += 5;
    Fiber::yield();
    sum = local;
  });
  fiber.resume();
  fiber.resume();
  fiber.resume();
  EXPECT_EQ(sum, 15);
}

TEST(Fiber, DeepRecursionOnFiberStack) {
  // ~1000 frames must fit comfortably in the default 256 KiB stack.
  std::function<int(int)> rec = [&rec](int n) {
    if (n == 0) return 0;
    return 1 + rec(n - 1);
  };
  int result = 0;
  Fiber fiber([&] { result = rec(1000); });
  fiber.resume();
  EXPECT_EQ(result, 1000);
}

TEST(Fiber, InterleavesTwoFibers) {
  std::vector<int> order;
  Fiber a([&order] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(4);
  });
  Fiber b([&order] {
    order.push_back(2);
    Fiber::yield();
    order.push_back(3);
  });
  a.resume();
  b.resume();
  b.resume();
  a.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Fiber, NestedResumeReturnsToDirectResumer) {
  std::vector<int> order;
  Fiber inner([&order] {
    order.push_back(2);
    Fiber::yield();
    order.push_back(5);
  });
  Fiber outer([&order, &inner] {
    order.push_back(1);
    inner.resume();       // runs inner until its yield
    order.push_back(3);   // inner's yield lands back here
    Fiber::yield();
    inner.resume();
    order.push_back(6);
  });
  outer.resume();
  order.push_back(4);
  outer.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(inner.finished());
  EXPECT_TRUE(outer.finished());
}

TEST(Fiber, ExceptionPropagatesFromResume) {
  Fiber fiber([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fiber.resume(), std::runtime_error);
  EXPECT_TRUE(fiber.finished());
}

TEST(Fiber, ExceptionAfterYieldPropagates) {
  Fiber fiber([] {
    Fiber::yield();
    throw std::logic_error("later");
  });
  fiber.resume();
  EXPECT_THROW(fiber.resume(), std::logic_error);
}

TEST(StackPool, ReusesStacks) {
  StackPool pool(64 * 1024);
  {
    Fiber fiber([] {}, &pool);
    fiber.resume();
  }
  EXPECT_EQ(pool.allocated(), 1u);
  EXPECT_EQ(pool.pooled(), 1u);
  {
    Fiber fiber([] {}, &pool);
    fiber.resume();
  }
  EXPECT_EQ(pool.allocated(), 1u);  // second fiber reused the stack
}

TEST(StackPool, GrowsUnderConcurrentFibers) {
  StackPool pool(64 * 1024);
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < 8; ++i) {
    fibers.push_back(std::make_unique<Fiber>([] { Fiber::yield(); }, &pool));
    fibers.back()->resume();
  }
  EXPECT_EQ(pool.allocated(), 8u);
  for (auto& fiber : fibers) fiber->resume();
  fibers.clear();
  EXPECT_EQ(pool.pooled(), 8u);
}

TEST(Fiber, ManySequentialFibers) {
  StackPool pool(64 * 1024);
  std::uint64_t total = 0;
  for (int i = 0; i < 10'000; ++i) {
    Fiber fiber([&total, i] { total += static_cast<std::uint64_t>(i); },
                &pool);
    fiber.resume();
  }
  EXPECT_EQ(total, 10'000ull * 9'999 / 2);
  EXPECT_LE(pool.allocated(), 1u);
}

}  // namespace
}  // namespace taskprof
