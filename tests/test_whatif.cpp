// Unit tests for the what-if projection layer: target-spec parsing and
// its typed errors, profile construction over recorded traces (including
// the degenerate no-task trace), path resolution, and the projection
// math on programs whose structure makes the answer checkable by hand
// (serial chains, zero-fraction identity, span re-evaluation bounds).
#include <gtest/gtest.h>

#include <memory>

#include "check/random_tree.hpp"
#include "rt/sim_runtime.hpp"
#include "trace/analysis.hpp"
#include "trace/recorder.hpp"
#include "whatif/whatif.hpp"

namespace taskprof {
namespace {

/// A trace-backed profile plus everything it points into.  Heap-allocated
/// so the analysis the profile references never moves.
struct Built {
  RegionRegistry registry;
  trace::Trace trace;
  trace::TraceAnalysis analysis;
  whatif::WhatIfProfile profile;
  whatif::Error error;
  rt::TeamStats stats;
};

template <typename Body>
std::unique_ptr<Built> run_and_build(int threads, Body&& body) {
  auto out = std::make_unique<Built>();
  rt::SimRuntime sim;
  trace::TraceRecorder recorder;
  sim.set_hooks(&recorder);
  out->stats = sim.parallel(threads, body);
  sim.set_hooks(nullptr);
  out->trace = recorder.take();
  out->analysis = trace::analyze_trace(out->trace);
  out->error = whatif::WhatIfProfile::build(out->trace, out->analysis,
                                            out->registry, &out->profile);
  return out;
}

std::unique_ptr<Built> run_uniform(int threads, int depth, int fanout,
                                   Ticks work = 400) {
  auto out = std::make_unique<Built>();
  const check::UniformTree tree(out->registry, work);
  rt::SimRuntime sim;
  trace::TraceRecorder recorder;
  sim.set_hooks(&recorder);
  out->stats = sim.parallel(threads, [&](rt::TaskContext& ctx) {
    if (ctx.single()) tree.body(ctx, depth, fanout);
  });
  sim.set_hooks(nullptr);
  out->trace = recorder.take();
  out->analysis = trace::analyze_trace(out->trace);
  out->error = whatif::WhatIfProfile::build(out->trace, out->analysis,
                                            out->registry, &out->profile);
  return out;
}

// -- parse_target_spec ------------------------------------------------------

TEST(ParseTargetSpec, AcceptsPathEqualsPercent) {
  whatif::TargetSpec spec;
  ASSERT_TRUE(whatif::parse_target_spec("fib_task=50", &spec).ok());
  EXPECT_EQ(spec.path, "fib_task");
  EXPECT_DOUBLE_EQ(spec.fraction, 0.5);
}

TEST(ParseTargetSpec, AcceptsDecimalsAndParameterSuffix) {
  whatif::TargetSpec spec;
  ASSERT_TRUE(whatif::parse_target_spec("sort_task[3]=12.5", &spec).ok());
  EXPECT_EQ(spec.path, "sort_task[3]");
  EXPECT_DOUBLE_EQ(spec.fraction, 0.125);
  ASSERT_TRUE(whatif::parse_target_spec("x=100", &spec).ok());
  EXPECT_DOUBLE_EQ(spec.fraction, 1.0);
}

TEST(ParseTargetSpec, RejectsMalformedSpecs) {
  whatif::TargetSpec spec;
  EXPECT_EQ(whatif::parse_target_spec("fib_task", &spec).code,
            whatif::ErrorCode::kBadSpec);
  EXPECT_EQ(whatif::parse_target_spec("=50", &spec).code,
            whatif::ErrorCode::kBadSpec);
  EXPECT_EQ(whatif::parse_target_spec("fib=abc", &spec).code,
            whatif::ErrorCode::kBadSpec);
  EXPECT_EQ(whatif::parse_target_spec("fib=", &spec).code,
            whatif::ErrorCode::kBadSpec);
}

TEST(ParseTargetSpec, RejectsFractionOutsideUnitRange) {
  whatif::TargetSpec spec;
  EXPECT_EQ(whatif::parse_target_spec("fib=0", &spec).code,
            whatif::ErrorCode::kBadFraction);
  EXPECT_EQ(whatif::parse_target_spec("fib=-5", &spec).code,
            whatif::ErrorCode::kBadFraction);
  EXPECT_EQ(whatif::parse_target_spec("fib=100.1", &spec).code,
            whatif::ErrorCode::kBadFraction);
}

TEST(ParseTargetSpec, ErrorCodeNamesAreStable) {
  // The CLI prints these in brackets; scripts match on them.
  EXPECT_STREQ(whatif::error_code_name(whatif::ErrorCode::kUnknownPath),
               "unknown_path");
  EXPECT_STREQ(whatif::error_code_name(whatif::ErrorCode::kBadFraction),
               "bad_fraction");
  EXPECT_STREQ(whatif::error_code_name(whatif::ErrorCode::kBadSpec),
               "bad_spec");
  EXPECT_STREQ(whatif::error_code_name(whatif::ErrorCode::kNoTrace),
               "no_trace");
  EXPECT_STREQ(whatif::error_code_name(whatif::ErrorCode::kEmptyProfile),
               "empty_profile");
}

// -- Profile construction ---------------------------------------------------

TEST(WhatIfProfile, TasklessTraceFailsWithEmptyProfile) {
  const auto built = run_and_build(
      2, [](rt::TaskContext& ctx) { ctx.work(1'000); });
  EXPECT_EQ(built->error.code, whatif::ErrorCode::kEmptyProfile);
}

TEST(WhatIfProfile, UniformTreeProfilesOnePathWithAllInstances) {
  const auto built = run_uniform(2, /*depth=*/3, /*fanout=*/2);
  ASSERT_TRUE(built->error.ok()) << built->error.message;
  ASSERT_EQ(built->profile.paths().size(), 1u);
  const whatif::CallPathStats& path = built->profile.paths().front();
  EXPECT_EQ(path.name, "uniform_task");
  EXPECT_EQ(path.instances, check::UniformTree::task_count(3, 2));
  EXPECT_GT(path.scalable, 0);
  // Sim traces carry kWork events, so scaling uses the declared work.
  EXPECT_TRUE(built->profile.work_basis());
  EXPECT_GE(built->profile.work(), built->profile.span());
  EXPECT_GT(built->profile.span_length(), 0);
  EXPECT_GE(built->profile.overhead(), 0);
  EXPECT_EQ(built->profile.measured_threads(), 2);
}

TEST(WhatIfProfile, ResolveMatchesNameAndParameter) {
  check::TreeShape shape;
  shape.parameter_fraction = 1.0;  // every task carries its depth
  auto built = std::make_unique<Built>();
  const check::RandomTaskTree tree(built->registry, shape);
  rt::SimRuntime sim;
  trace::TraceRecorder recorder;
  sim.set_hooks(&recorder);
  built->stats = tree.run(sim, /*seed=*/7, /*threads=*/2);
  sim.set_hooks(nullptr);
  built->trace = recorder.take();
  built->analysis = trace::analyze_trace(built->trace);
  built->error = whatif::WhatIfProfile::build(
      built->trace, built->analysis, built->registry, &built->profile);
  ASSERT_TRUE(built->error.ok()) << built->error.message;

  // A bare name matches every parameter of that construct.
  std::vector<std::size_t> all_params;
  ASSERT_TRUE(built->profile.resolve("rand_task_a", &all_params).ok());
  std::vector<std::size_t> one_param;
  const std::string label = built->profile.paths()[all_params[0]].label();
  ASSERT_TRUE(built->profile.resolve(label, &one_param).ok());
  EXPECT_EQ(one_param.size(), 1u);
  EXPECT_GE(all_params.size(), one_param.size());
}

TEST(WhatIfProfile, ResolveUnknownPathListsKnownOnes) {
  const auto built = run_uniform(2, /*depth=*/2, /*fanout=*/2);
  ASSERT_TRUE(built->error.ok());
  std::vector<std::size_t> indices;
  const whatif::Error error =
      built->profile.resolve("no_such_path", &indices);
  EXPECT_EQ(error.code, whatif::ErrorCode::kUnknownPath);
  EXPECT_NE(error.message.find("uniform_task"), std::string::npos)
      << "the error should list the profiled paths: " << error.message;
}

// -- Projection math --------------------------------------------------------

TEST(WhatIfProjection, ZeroFractionIsIdentity) {
  const auto built = run_uniform(4, /*depth=*/4, /*fanout=*/2);
  ASSERT_TRUE(built->error.ok());
  std::vector<std::size_t> targets;
  ASSERT_TRUE(built->profile.resolve("uniform_task", &targets).ok());
  const whatif::Projection p =
      built->profile.project(targets, 0.0, {1, 2, 4, 8});
  EXPECT_EQ(p.work_after, built->profile.work());
  EXPECT_EQ(p.span_after, built->profile.span());
  EXPECT_EQ(p.span_length_after, built->profile.span_length());
  for (const whatif::ThreadProjection& tp : p.at_threads) {
    EXPECT_NEAR(tp.speedup, 1.0, 1e-12) << "P=" << tp.threads;
  }
}

/// Hand-build a clean serial chain: the implicit task creates task i,
/// taskwaits, task i runs for `duration` ticks, repeat — no scheduling
/// gaps, no creator slivers, so T1 == T∞ exactly.  Tasks alternate
/// between two regions so a single-region target has share < 1.
trace::Trace make_serial_trace(int tasks, Ticks duration,
                               RegionHandle region_a,
                               RegionHandle region_b) {
  std::vector<trace::TraceEvent> events;
  Ticks now = 0;
  events.push_back({now, 0, trace::EventKind::kImplicitBegin,
                    kImplicitTaskId, kInvalidRegion, kNoParameter, 0});
  for (int i = 0; i < tasks; ++i) {
    const TaskInstanceId id = static_cast<TaskInstanceId>(i + 1);
    const RegionHandle region = i % 2 == 0 ? region_a : region_b;
    events.push_back({now, 0, trace::EventKind::kCreateEnd, id, region,
                      kNoParameter, 0});
    events.push_back({now, 0, trace::EventKind::kTaskwaitBegin,
                      kImplicitTaskId, kInvalidRegion, kNoParameter, 0});
    events.push_back({now, 0, trace::EventKind::kTaskBegin, id, region,
                      kNoParameter, 0});
    now += duration;
    events.push_back({now, 0, trace::EventKind::kTaskEnd, id, region,
                      kNoParameter, 0});
    events.push_back({now, 0, trace::EventKind::kTaskwaitEnd,
                      kImplicitTaskId, kInvalidRegion, kNoParameter, 0});
  }
  events.push_back({now, 0, trace::EventKind::kImplicitEnd,
                    kImplicitTaskId, kInvalidRegion, kNoParameter, 0});
  return trace::Trace({std::move(events)});
}

TEST(WhatIfProjection, SerialChainIsExact) {
  // On a gapless serial chain T1 == T∞, so T_est(P) is flat in P and the
  // projection collapses to Amdahl's law exactly: speedup == bound ==
  // 1/(1 - N·share) at every thread count.
  auto built = std::make_unique<Built>();
  const RegionHandle stage_a =
      built->registry.register_region("stage_a", RegionType::kTask);
  const RegionHandle stage_b =
      built->registry.register_region("stage_b", RegionType::kTask);
  built->trace = make_serial_trace(24, 1'000, stage_a, stage_b);
  built->analysis = trace::analyze_trace(built->trace);
  built->error = whatif::WhatIfProfile::build(
      built->trace, built->analysis, built->registry, &built->profile);
  ASSERT_TRUE(built->error.ok()) << built->error.message;
  EXPECT_EQ(built->profile.work(), built->profile.span());
  EXPECT_EQ(built->profile.span_length(), 24);

  std::vector<std::size_t> targets;
  ASSERT_TRUE(built->profile.resolve("stage_a", &targets).ok());
  for (const double fraction : {0.25, 0.5, 0.9}) {
    const whatif::Projection p =
        built->profile.project(targets, fraction, {1, 2, 8});
    EXPECT_NEAR(p.share, 0.5, 1e-12);
    ASSERT_GT(p.bound, 0.0);
    for (const whatif::ThreadProjection& tp : p.at_threads) {
      EXPECT_NEAR(tp.speedup, p.bound, p.bound * 1e-9)
          << "N=" << fraction << " P=" << tp.threads;
    }
  }
}

TEST(WhatIfProjection, SpanReEvaluationIsBounded) {
  // Scaling can only shrink the span, and no further than the scalable
  // time sitting on the measured chain (the old chain stays feasible).
  const auto built = run_uniform(4, /*depth=*/5, /*fanout=*/2);
  ASSERT_TRUE(built->error.ok());
  std::vector<std::size_t> targets;
  ASSERT_TRUE(built->profile.resolve("uniform_task", &targets).ok());
  const double fraction = 0.9;
  const whatif::Projection p =
      built->profile.project(targets, fraction, {4});
  EXPECT_LE(p.span_after, built->profile.span());
  const double floor = static_cast<double>(built->profile.span()) -
                       fraction * static_cast<double>(p.scalable_on_span);
  EXPECT_GE(static_cast<double>(p.span_after), floor - 2.0);
  EXPECT_LT(p.work_after, built->profile.work());
}

TEST(WhatIfProjection, RankTargetsCoversEveryPathSortedBySpeedup) {
  auto built = std::make_unique<Built>();
  const check::RandomTaskTree tree(built->registry);
  rt::SimRuntime sim;
  trace::TraceRecorder recorder;
  sim.set_hooks(&recorder);
  built->stats = tree.run(sim, /*seed=*/11, /*threads=*/4);
  sim.set_hooks(nullptr);
  built->trace = recorder.take();
  built->analysis = trace::analyze_trace(built->trace);
  built->error = whatif::WhatIfProfile::build(
      built->trace, built->analysis, built->registry, &built->profile);
  ASSERT_TRUE(built->error.ok());

  const std::vector<whatif::Projection> ranked =
      built->profile.rank_targets(0.5, {4});
  ASSERT_EQ(ranked.size(), built->profile.paths().size());
  const auto speedup_at = [&](const whatif::Projection& p) {
    for (const whatif::ThreadProjection& tp : p.at_threads) {
      if (tp.threads == built->profile.measured_threads()) return tp.speedup;
    }
    return 0.0;
  };
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(speedup_at(ranked[i - 1]), speedup_at(ranked[i]) - 1e-12)
        << "rank order broken at " << i;
  }
}

}  // namespace
}  // namespace taskprof
