#include "rt/sim_runtime.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <stdexcept>

#include "profile/region.hpp"
#include "test_util.hpp"

namespace taskprof {
namespace {

rt::TaskAttrs attrs_for(RegionHandle region,
                        rt::TaskBinding binding = rt::TaskBinding::kTied) {
  rt::TaskAttrs attrs;
  attrs.region = region;
  attrs.binding = binding;
  return attrs;
}

class SimRuntimeTest : public ::testing::Test {
 protected:
  RegionRegistry registry_;
  RegionHandle task_ = registry_.register_region("t", RegionType::kTask);
};

TEST_F(SimRuntimeTest, RejectsNonPositiveThreadCount) {
  rt::SimRuntime sim;
  EXPECT_THROW(sim.parallel(0, [](rt::TaskContext&) {}),
               std::invalid_argument);
}

TEST_F(SimRuntimeTest, VirtualTimeAdvancesWithDeclaredWork) {
  rt::SimRuntime sim;
  auto stats = sim.parallel(1, [](rt::TaskContext& ctx) { ctx.work(12'345); });
  EXPECT_GE(stats.parallel_ticks, 12'345);
  // Only barrier/poll overhead on top — well under a millisecond.
  EXPECT_LT(stats.parallel_ticks, 12'345 + 100'000);
}

TEST_F(SimRuntimeTest, FullyDeterministicAcrossRuns) {
  auto program = [this](rt::SimRuntime& sim) {
    return sim.parallel(4, [this](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      std::function<void(rt::TaskContext&, int)> rec =
          [&rec, this](rt::TaskContext& c, int depth) {
            c.work(500);
            if (depth == 0) return;
            for (int i = 0; i < 3; ++i) {
              c.create_task(
                  [&rec, depth](rt::TaskContext& cc) { rec(cc, depth - 1); },
                  attrs_for(task_));
            }
            c.taskwait();
          };
      rec(ctx, 5);
    });
  };
  rt::SimRuntime sim_a;
  rt::SimRuntime sim_b;
  const auto a = program(sim_a);
  const auto b = program(sim_b);
  EXPECT_EQ(a.parallel_ticks, b.parallel_ticks);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.tasks_executed, 363u);  // 3 + 9 + ... + 3^5
}

TEST_F(SimRuntimeTest, WorkDistributesAcrossVirtualWorkers) {
  // 8 independent 1 ms tasks on 4 workers should take ~2 ms, far less
  // than the 8 ms serial span.
  rt::SimRuntime sim;
  auto stats = sim.parallel(4, [this](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 8; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(1'000'000); },
                      attrs_for(task_));
    }
  });
  EXPECT_GE(stats.parallel_ticks, 2'000'000);
  EXPECT_LT(stats.parallel_ticks, 4'000'000);
}

TEST_F(SimRuntimeTest, ManagementLockSerializesTinyTasks) {
  // Thousands of zero-work tasks: the runtime lock is the bottleneck, so
  // 8 workers cannot be anywhere near 8x faster than 1.
  auto run = [this](int threads) {
    rt::SimRuntime sim;
    return sim
        .parallel(threads,
                  [this](rt::TaskContext& ctx) {
                    if (!ctx.single()) return;
                    for (int i = 0; i < 2'000; ++i) {
                      ctx.create_task([](rt::TaskContext& c) { c.work(50); },
                                      attrs_for(task_));
                    }
                  })
        .parallel_ticks;
  };
  const Ticks t1 = run(1);
  const Ticks t8 = run(8);
  EXPECT_GT(t8, t1 / 4);  // nowhere near linear speedup
}

TEST_F(SimRuntimeTest, CoarseTasksScaleWell) {
  auto run = [this](int threads) {
    rt::SimRuntime sim;
    return sim
        .parallel(threads,
                  [this](rt::TaskContext& ctx) {
                    if (!ctx.single()) return;
                    for (int i = 0; i < 64; ++i) {
                      ctx.create_task(
                          [](rt::TaskContext& c) { c.work(1'000'000); },
                          attrs_for(task_));
                    }
                  })
        .parallel_ticks;
  };
  const Ticks t1 = run(1);
  const Ticks t4 = run(4);
  EXPECT_LT(t4, t1 / 3);  // near-linear speedup for 1 ms tasks
}

TEST_F(SimRuntimeTest, TaskwaitOrdersResults) {
  rt::SimRuntime sim;
  int value = 0;
  sim.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    ctx.create_task(
        [&value, this](rt::TaskContext& inner) {
          inner.create_task(
              [&value](rt::TaskContext& c) {
                c.work(100);
                value += 5;
              },
              attrs_for(task_));
          inner.taskwait();
          value *= 2;
        },
        attrs_for(task_));
    ctx.taskwait();
    value += 1;
  });
  EXPECT_EQ(value, 11);
}

TEST_F(SimRuntimeTest, SingleClaimsOncePerEncounter) {
  rt::SimRuntime sim;
  int first = 0;
  int second = 0;
  sim.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) ++first;
    ctx.barrier();
    if (ctx.single()) ++second;
  });
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST_F(SimRuntimeTest, UndeferredRunsInlineInVirtualTime) {
  rt::SimRuntime sim;
  bool ran = false;
  sim.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    rt::TaskAttrs attrs = attrs_for(task_);
    attrs.undeferred = true;
    ctx.create_task(
        [&ran](rt::TaskContext& c) {
          c.work(1000);
          ran = true;
        },
        attrs);
    EXPECT_TRUE(ran);
  });
  EXPECT_TRUE(ran);
}

TEST_F(SimRuntimeTest, UndeferredChildCanBlockOnItsOwnChildren) {
  rt::SimRuntime sim;
  int value = 0;
  sim.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    rt::TaskAttrs undeferred = attrs_for(task_);
    undeferred.undeferred = true;
    ctx.create_task(
        [&value, this](rt::TaskContext& inner) {
          inner.create_task([&value](rt::TaskContext&) { value += 7; },
                            attrs_for(task_));
          inner.taskwait();
          value *= 3;
        },
        undeferred);
  });
  EXPECT_EQ(value, 21);
}

TEST_F(SimRuntimeTest, UntiedTasksMigrateBetweenWorkers) {
  rt::SimRuntime sim;
  auto stats = sim.parallel(4, [this](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 32; ++i) {
      ctx.create_task(
          [this](rt::TaskContext& outer) {
            outer.create_task([](rt::TaskContext& c) { c.work(20'000); },
                              attrs_for(task_));
            outer.taskwait();  // untied: may resume elsewhere
            outer.work(5'000);
          },
          attrs_for(task_, rt::TaskBinding::kUntied));
    }
  });
  EXPECT_EQ(stats.tasks_executed, 64u);
  EXPECT_GT(stats.migrations, 0u);
}

TEST_F(SimRuntimeTest, TiedTasksNeverMigrate) {
  rt::SimRuntime sim;
  auto stats = sim.parallel(4, [this](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 32; ++i) {
      ctx.create_task(
          [this](rt::TaskContext& outer) {
            outer.create_task([](rt::TaskContext& c) { c.work(20'000); },
                              attrs_for(task_));
            outer.taskwait();
            outer.work(5'000);
          },
          attrs_for(task_));
    }
  });
  EXPECT_EQ(stats.migrations, 0u);
}

TEST_F(SimRuntimeTest, UntiedMigrationCanBeDisabled) {
  rt::SimConfig config;
  config.untied_migration = false;
  rt::SimRuntime sim(config);
  auto stats = sim.parallel(4, [this](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 32; ++i) {
      ctx.create_task(
          [this](rt::TaskContext& outer) {
            outer.create_task([](rt::TaskContext& c) { c.work(20'000); },
                              attrs_for(task_));
            outer.taskwait();
          },
          attrs_for(task_, rt::TaskBinding::kUntied));
    }
  });
  EXPECT_EQ(stats.migrations, 0u);
}

TEST_F(SimRuntimeTest, NowAdvancesAcrossRegions) {
  rt::SimRuntime sim;
  EXPECT_EQ(sim.now(), 0);
  sim.parallel(1, [](rt::TaskContext& ctx) { ctx.work(5'000); });
  const Ticks after_first = sim.now();
  EXPECT_GE(after_first, 5'000);
  sim.parallel(1, [](rt::TaskContext& ctx) { ctx.work(5'000); });
  EXPECT_GE(sim.now(), after_first + 5'000);
}

TEST_F(SimRuntimeTest, FifoConfigStillCorrect) {
  rt::SimConfig config;
  config.lifo_dequeue = false;
  rt::SimRuntime sim(config);
  int executed = 0;
  sim.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 100; ++i) {
      ctx.create_task([&executed](rt::TaskContext&) { ++executed; },
                      attrs_for(task_));
    }
  });
  EXPECT_EQ(executed, 100);
}

TEST_F(SimRuntimeTest, FiberStacksAreRecycledAcrossManyTasks) {
  rt::SimRuntime sim;
  std::function<void(rt::TaskContext&, int)> rec =
      [&rec, this](rt::TaskContext& c, int depth) {
        c.work(100);
        if (depth == 0) return;
        for (int i = 0; i < 2; ++i) {
          c.create_task(
              [&rec, depth](rt::TaskContext& cc) { rec(cc, depth - 1); },
              attrs_for(task_));
        }
        c.taskwait();
      };
  auto stats = sim.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) rec(ctx, 10);
  });
  EXPECT_EQ(stats.tasks_executed, 2u * ((1u << 10) - 1));
}

TEST_F(SimRuntimeTest, HooksSeeBalancedEvents) {
  testutil::RecordingHooks hooks;
  rt::SimRuntime sim;
  sim.set_hooks(&hooks);
  sim.parallel(2, [this](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 5; ++i) {
      ctx.create_task([](rt::TaskContext& c) { c.work(100); },
                      attrs_for(task_));
    }
    ctx.taskwait();
  });
  sim.set_hooks(nullptr);
  EXPECT_EQ(hooks.count("implicit_begin"), 2u);
  EXPECT_EQ(hooks.count("implicit_end"), 2u);
  EXPECT_EQ(hooks.count("create_begin"), 5u);
  EXPECT_EQ(hooks.count("create_end"), 5u);
  EXPECT_EQ(hooks.count("task_begin"), 5u);
  EXPECT_EQ(hooks.count("task_end"), 5u);
  EXPECT_EQ(hooks.count("ibarrier_begin"), 2u);
  EXPECT_EQ(hooks.count("ibarrier_end"), 2u);

  // Per-thread event streams must be well-formed: a task_begin while a
  // task runs implies the previous one ended or switched.
  for (ThreadId tid : {ThreadId{0}, ThreadId{1}}) {
    int open = 0;
    for (const auto& event : hooks.events_for(tid)) {
      if (event.kind == "task_begin") {
        ++open;
        EXPECT_LE(open, 2);  // at most nested once here (no inner waits)
      }
      if (event.kind == "task_end") --open;
    }
    EXPECT_EQ(open, 0);
  }
}

TEST_F(SimRuntimeTest, InstrumentationCostsSlowTheRunDown) {
  auto run = [this](bool instrumented) {
    testutil::RecordingHooks hooks;
    rt::SimRuntime sim;
    if (instrumented) sim.set_hooks(&hooks);
    return sim
        .parallel(1,
                  [this](rt::TaskContext& ctx) {
                    if (!ctx.single()) return;
                    for (int i = 0; i < 500; ++i) {
                      ctx.create_task([](rt::TaskContext& c) { c.work(200); },
                                      attrs_for(task_));
                    }
                  })
        .parallel_ticks;
  };
  const Ticks plain = run(false);
  const Ticks instrumented = run(true);
  EXPECT_GT(instrumented, plain);
}

}  // namespace
}  // namespace taskprof
