#include "measure/aggregate.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "profile/region.hpp"

namespace taskprof {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  RegionRegistry registry_;
  ManualClock clock_;
  RegionHandle implicit_ =
      registry_.register_region("implicit task", RegionType::kImplicitTask);
  RegionHandle barrier_ = registry_.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  RegionHandle task_a_ = registry_.register_region("taskA", RegionType::kTask);
  RegionHandle task_b_ = registry_.register_region("taskB", RegionType::kTask);
};

TEST_F(AggregateTest, EmptyViewsGiveEmptyProfile) {
  const AggregateProfile agg = aggregate_profiles({});
  EXPECT_EQ(agg.thread_count, 0u);
  EXPECT_EQ(agg.implicit_root, nullptr);
  EXPECT_TRUE(agg.task_roots.empty());
}

TEST_F(AggregateTest, MergesImplicitTreesAcrossThreads) {
  ThreadTaskProfiler p0(0, clock_, implicit_);
  ThreadTaskProfiler p1(1, clock_, implicit_);
  p0.enter(barrier_);
  p1.enter(barrier_);
  clock_.set(10);
  p0.exit(barrier_);
  clock_.set(14);
  p1.exit(barrier_);
  clock_.set(20);
  p0.finalize();
  p1.finalize();

  const std::vector<ThreadProfileView> views = {p0.view(), p1.view()};
  const AggregateProfile agg = aggregate_profiles(views);
  EXPECT_EQ(agg.thread_count, 2u);
  ASSERT_NE(agg.implicit_root, nullptr);
  EXPECT_EQ(agg.implicit_root->visits, 2u);
  EXPECT_EQ(agg.implicit_root->inclusive, 40);
  const CallNode* barrier_node =
      find_child(const_cast<CallNode*>(agg.implicit_root), barrier_);
  ASSERT_NE(barrier_node, nullptr);
  EXPECT_EQ(barrier_node->visits, 2u);
  EXPECT_EQ(barrier_node->inclusive, 24);
  EXPECT_EQ(barrier_node->visit_stats.min, 10);
  EXPECT_EQ(barrier_node->visit_stats.max, 14);
}

TEST_F(AggregateTest, MergesTaskTreesPerConstruct) {
  ThreadTaskProfiler p0(0, clock_, implicit_);
  ThreadTaskProfiler p1(1, clock_, implicit_);
  p0.enter(barrier_);
  p1.enter(barrier_);
  p0.task_begin(task_a_, 1);
  clock_.set(3);
  p0.task_end(1);
  p1.task_begin(task_a_, 2);
  clock_.set(8);
  p1.task_end(2);
  p1.task_begin(task_b_, 3);
  clock_.set(9);
  p1.task_end(3);
  p0.exit(barrier_);
  p1.exit(barrier_);
  p0.finalize();
  p1.finalize();

  const std::vector<ThreadProfileView> views = {p0.view(), p1.view()};
  const AggregateProfile agg = aggregate_profiles(views);
  ASSERT_EQ(agg.task_roots.size(), 2u);
  const CallNode* merged_a = agg.task_root(task_a_);
  ASSERT_NE(merged_a, nullptr);
  EXPECT_EQ(merged_a->visits, 2u);  // one instance per thread
  EXPECT_EQ(merged_a->inclusive, 3 + 5);
  const CallNode* merged_b = agg.task_root(task_b_);
  ASSERT_NE(merged_b, nullptr);
  EXPECT_EQ(merged_b->visits, 1u);
  EXPECT_EQ(agg.task_root(static_cast<RegionHandle>(999)), nullptr);
}

TEST_F(AggregateTest, CollectsCountersAcrossThreads) {
  ThreadTaskProfiler p0(0, clock_, implicit_);
  ThreadTaskProfiler p1(1, clock_, implicit_);
  p0.enter(barrier_);
  p1.enter(barrier_);
  p0.task_begin(task_a_, 1);
  p0.task_begin(task_a_, 2);
  p0.task_end(2);
  p0.task_switch(1);
  p0.task_end(1);
  p1.task_begin(task_a_, 3);
  p1.task_end(3);
  p0.exit(barrier_);
  p1.exit(barrier_);
  p0.finalize();
  p1.finalize();

  const std::vector<ThreadProfileView> views = {p0.view(), p1.view()};
  const AggregateProfile agg = aggregate_profiles(views);
  EXPECT_EQ(agg.max_concurrent_any_thread, 2u);
  ASSERT_EQ(agg.max_concurrent_per_thread.size(), 2u);
  EXPECT_EQ(agg.max_concurrent_per_thread[0], 2u);
  EXPECT_EQ(agg.max_concurrent_per_thread[1], 1u);
  EXPECT_GT(agg.total_task_switches, 0u);
}

TEST_F(AggregateTest, ProfileIsMovable) {
  ThreadTaskProfiler p0(0, clock_, implicit_);
  p0.enter(barrier_);
  clock_.set(5);
  p0.exit(barrier_);
  p0.finalize();
  const std::vector<ThreadProfileView> views = {p0.view()};
  AggregateProfile agg = aggregate_profiles(views);
  const CallNode* root_before = agg.implicit_root;
  AggregateProfile moved = std::move(agg);
  EXPECT_EQ(moved.implicit_root, root_before);
  EXPECT_EQ(moved.implicit_root->inclusive, clock_.now());
}

}  // namespace
}  // namespace taskprof
