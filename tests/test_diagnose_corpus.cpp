// Golden corpus for the diagnosis engine: each seeded anti-pattern shape
// runs on the deterministic sim engine and its full JSON report must
// match tests/corpus/diagnose/<name>.case byte-for-byte.  Regenerate
// after an intentional detector/schema change with
//   TASKPROF_REGEN_DIAGNOSE=1 ./test_diagnose_corpus
// and commit the updated .case files alongside the change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "check/shapes.hpp"
#include "diagnose/diagnose.hpp"
#include "diagnose/render.hpp"

namespace taskprof {
namespace {

#ifndef TASKPROF_DIAGNOSE_CORPUS_DIR
#error "tests/CMakeLists.txt must define TASKPROF_DIAGNOSE_CORPUS_DIR"
#endif

std::string diagnosis_json_for(check::AntiPattern pattern) {
  const check::ShapeRun run = check::run_anti_pattern(pattern);
  diag::DiagnosisInput input;
  input.profile = &run.profile;
  input.registry = run.registry.get();
  input.trace = &run.trace;
  input.telemetry = &run.telemetry;
  return diag::render_diagnosis_json(diag::run_diagnosis(input));
}

std::filesystem::path case_path(check::AntiPattern pattern) {
  return std::filesystem::path(TASKPROF_DIAGNOSE_CORPUS_DIR) /
         (std::string(check::anti_pattern_name(pattern)) + ".case");
}

TEST(DiagnoseCorpus, GoldenReportsAreStable) {
  const bool regen = std::getenv("TASKPROF_REGEN_DIAGNOSE") != nullptr;
  for (const check::AntiPattern pattern : check::kAllAntiPatterns) {
    SCOPED_TRACE(check::anti_pattern_name(pattern));
    const std::string json = diagnosis_json_for(pattern);
    const std::filesystem::path path = case_path(pattern);
    if (regen) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << json;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (regenerate with TASKPROF_REGEN_DIAGNOSE=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(json, golden.str())
        << "diagnosis JSON drifted from the committed golden; if the "
           "change is intentional, regenerate with "
           "TASKPROF_REGEN_DIAGNOSE=1";
  }
}

TEST(DiagnoseCorpus, RunsAreDeterministic) {
  // Two fresh runs of the same shape must serialize identically — the
  // property the goldens rely on.
  EXPECT_EQ(diagnosis_json_for(check::AntiPattern::kCreationStorm),
            diagnosis_json_for(check::AntiPattern::kCreationStorm));
}

}  // namespace
}  // namespace taskprof
