// Taskgraph record-and-replay (rt/taskgraph.hpp, DESIGN.md §12).
//
// Three layers of evidence that the static scheduler mode is safe to use
// as a drop-in for the dynamic deques:
//  1. unit tests of the graph data structures (recorder → CSR, partition,
//     slot protocol);
//  2. record/replay profile-projection equivalence against a chase_lev
//     run of the same BOTS kernels — the replay must not change what the
//     profiler attributes, only how fast the program runs;
//  3. divergence handling (shape changes fall back and mark the graph
//     stale, results stay correct) and seeded SchedulePolicy fuzzing
//     (replay output is immune to schedule perturbation, because the run
//     lists — not the race outcomes — decide placement).
#include "rt/taskgraph.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "check/differential.hpp"
#include "instrument/instrumentor.hpp"
#include "profile/region.hpp"
#include "rt/hooks.hpp"
#include "rt/real_runtime.hpp"
#include "rt/schedule_policy.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof {
namespace {

using rt::kGraphNone;
using rt::kGraphRoot;

// ---------------------------------------------------------------------
// Layer 1: data structures.
// ---------------------------------------------------------------------

TEST(TaskGraphRecorder, FreezeBuildsOrdinalOrderedCSR) {
  rt::TaskGraphRecorder rec(2);
  // root -> a, b; a -> a0, a1; b -> b0.  All spawned by thread 0.
  const std::uint32_t a = rec.record_spawn(kGraphRoot, 1, 10, 0);
  const std::uint32_t b = rec.record_spawn(kGraphRoot, 1, 11, 0);
  const std::uint32_t a0 = rec.record_spawn(a, 2, kNoParameter, 0);
  const std::uint32_t a1 = rec.record_spawn(a, 2, kNoParameter, 0);
  const std::uint32_t b0 = rec.record_spawn(b, 2, kNoParameter, 0);
  rec.record_duration(a, 7);
  rec.record_duration(b0, 3);
  EXPECT_EQ(rec.size(), 5u);

  const auto graph = rec.freeze();
  ASSERT_EQ(graph->size(), 5u);
  EXPECT_EQ(graph->child_count(kGraphRoot), 2u);
  EXPECT_EQ(graph->child_at(kGraphRoot, 0), a);
  EXPECT_EQ(graph->child_at(kGraphRoot, 1), b);
  EXPECT_EQ(graph->child_count(a), 2u);
  EXPECT_EQ(graph->child_at(a, 0), a0);
  EXPECT_EQ(graph->child_at(a, 1), a1);
  EXPECT_EQ(graph->child_count(b), 1u);
  EXPECT_EQ(graph->child_at(b, 0), b0);
  EXPECT_EQ(graph->child_at(b, 1), kGraphNone);
  EXPECT_EQ(graph->total_duration(), 10);
  EXPECT_EQ(graph->recorded_threads(), 2);
  EXPECT_TRUE(graph->single_root_producer());
  EXPECT_FALSE(graph->root_taskwait());

  // Parent index precedes every child index (run-list topological
  // premise).
  for (std::uint32_t i = 0; i < graph->size(); ++i) {
    const rt::TaskGraphNode& n = graph->node(i);
    if (n.parent != kGraphRoot) {
      EXPECT_LT(n.parent, i);
    }
  }
}

TEST(TaskGraphRecorder, MatchSpawnChecksSiteAndOrdinal) {
  rt::TaskGraphRecorder rec(1);
  const std::uint32_t a = rec.record_spawn(kGraphRoot, 1, 10, 0);
  (void)rec.record_spawn(a, 2, 5, 0);
  const auto graph = rec.freeze();

  std::uint32_t node = kGraphNone;
  EXPECT_TRUE(graph->match_spawn(kGraphRoot, 0, 1, 10, &node));
  EXPECT_EQ(node, a);
  EXPECT_TRUE(graph->match_spawn(a, 0, 2, 5, &node));
  // Region mismatch, parameter mismatch, ordinal past the recording.
  EXPECT_FALSE(graph->match_spawn(kGraphRoot, 0, 9, 10, &node));
  EXPECT_FALSE(graph->match_spawn(kGraphRoot, 0, 1, 99, &node));
  EXPECT_FALSE(graph->match_spawn(kGraphRoot, 1, 1, 10, &node));
}

TEST(TaskGraphRecorder, MultiThreadRootSpawnsDisableBatchedClaims) {
  rt::TaskGraphRecorder rec(2);
  (void)rec.record_spawn(kGraphRoot, 1, 0, /*tid=*/0);
  (void)rec.record_spawn(kGraphRoot, 1, 1, /*tid=*/1);
  const auto graph = rec.freeze();
  EXPECT_FALSE(graph->single_root_producer());
}

TEST(TaskGraphRecorder, RootTaskwaitIsSticky) {
  rt::TaskGraphRecorder rec(1);
  (void)rec.record_spawn(kGraphRoot, 1, 0, 0);
  rec.note_root_taskwait();
  const auto graph = rec.freeze();
  EXPECT_TRUE(graph->root_taskwait());
}

std::unique_ptr<rt::TaskGraph> make_chain_graph(std::uint32_t n,
                                                Ticks each) {
  rt::TaskGraphRecorder rec(1);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t node = rec.record_spawn(kGraphRoot, 1, i, 0);
    rec.record_duration(node, each);
  }
  return rec.freeze();
}

TEST(StaticSchedule, PartitionCoversEveryNodeOnceAscending) {
  const auto graph = make_chain_graph(100, 1);
  const rt::StaticSchedule sched =
      rt::StaticSchedule::build(*graph, /*num_threads=*/4, /*block=*/8,
                                /*active_limit=*/4);
  ASSERT_EQ(sched.run_lists.size(), 4u);
  std::set<std::uint32_t> seen;
  for (const auto& list : sched.run_lists) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0) {
        EXPECT_LT(list[i - 1], list[i]);  // run lists stay ascending
      }
      EXPECT_TRUE(seen.insert(list[i]).second) << "node assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), graph->size());
}

TEST(StaticSchedule, ActiveLimitConcentratesWork) {
  const auto graph = make_chain_graph(64, 1);
  // 8 workers but only 2 may receive work (oversubscribed-host cap).
  const rt::StaticSchedule sched =
      rt::StaticSchedule::build(*graph, 8, /*block=*/4, /*active_limit=*/2);
  ASSERT_EQ(sched.run_lists.size(), 8u);
  EXPECT_FALSE(sched.run_lists[0].empty());
  EXPECT_FALSE(sched.run_lists[1].empty());
  for (std::size_t w = 2; w < 8; ++w) {
    EXPECT_TRUE(sched.run_lists[w].empty());
  }
}

TEST(StaticSchedule, GreedyBalancesRecordedDuration) {
  // One heavy block followed by many light ones: the greedy partitioner
  // must not give the heavy worker more blocks until the others catch up.
  rt::TaskGraphRecorder rec(1);
  for (std::uint32_t i = 0; i < 40; ++i) {
    const std::uint32_t node = rec.record_spawn(kGraphRoot, 1, i, 0);
    rec.record_duration(node, i < 4 ? 1000 : 10);
  }
  const auto graph = rec.freeze();
  const rt::StaticSchedule sched =
      rt::StaticSchedule::build(*graph, 2, /*block=*/4, /*active_limit=*/2);
  // Worker owning the heavy first block gets few nodes; the other the rest.
  const std::size_t n0 = sched.run_lists[0].size();
  const std::size_t n1 = sched.run_lists[1].size();
  EXPECT_EQ(n0 + n1, 40u);
  EXPECT_EQ(std::min(n0, n1), 4u) << "heavy block should stand alone";
}

TEST(ReplayState, PollIsHeadOfLineBlockingAndSkipsCancelled) {
  const auto graph = make_chain_graph(4, 1);
  const rt::StaticSchedule sched =
      rt::StaticSchedule::build(*graph, 1, 16, 1);
  rt::ReplayState replay;
  replay.bind(graph.get(), &sched);

  std::size_t cursor = 0;
  EXPECT_EQ(replay.poll(0, cursor), kGraphNone);  // nothing published
  replay.publish(1);
  EXPECT_EQ(replay.poll(0, cursor), kGraphNone);  // head (0) still empty
  replay.publish(0);
  EXPECT_EQ(replay.poll(0, cursor), 0u);
  EXPECT_EQ(replay.poll(0, cursor), 1u);
  // Cancel node 2's subtree: poll must skip it and block on 3.
  EXPECT_EQ(replay.cancel_subtree(2), 1u);
  EXPECT_EQ(replay.poll(0, cursor), kGraphNone);
  replay.publish(3);
  EXPECT_EQ(replay.poll(0, cursor), 3u);
  EXPECT_EQ(replay.poll(0, cursor), kGraphNone);  // list exhausted
  EXPECT_EQ(replay.unspawned_count(), 0u);
}

TEST(ReplayState, CancelSubtreeIsExactOnceAndRecursive) {
  rt::TaskGraphRecorder rec(1);
  const std::uint32_t a = rec.record_spawn(kGraphRoot, 1, 0, 0);
  (void)rec.record_spawn(a, 2, kNoParameter, 0);
  const std::uint32_t a1 = rec.record_spawn(a, 2, kNoParameter, 0);
  (void)rec.record_spawn(a1, 3, kNoParameter, 0);
  const auto graph = rec.freeze();
  const rt::StaticSchedule sched =
      rt::StaticSchedule::build(*graph, 1, 16, 1);
  rt::ReplayState replay;
  replay.bind(graph.get(), &sched);

  EXPECT_EQ(replay.cancel_subtree(a), 4u);
  EXPECT_EQ(replay.cancel_subtree(a), 0u);  // already claimed
  EXPECT_EQ(replay.cancel_children_from(kGraphRoot, 0), 0u);
  EXPECT_EQ(replay.unspawned_count(), 0u);
}

// ---------------------------------------------------------------------
// Layers 2/3: whole-engine behaviour.
// ---------------------------------------------------------------------

/// One instrumented kernel run; the registry is not movable, so results
/// are filled in place.
struct Measured {
  RegionRegistry registry;
  bots::KernelResult result;
  telemetry::Snapshot snapshot;
  AggregateProfile profile;
};

/// Run `kernel_name` on `runtime` `iterations` times; only the LAST
/// iteration is instrumented and profiled (for kTaskGraph that makes the
/// measured iteration a replay when iterations >= 2).
void run_kernel(Measured& out, rt::Runtime& runtime,
                const std::string& kernel_name, int threads,
                int iterations) {
  auto kernel = bots::make_kernel(kernel_name);
  ASSERT_NE(kernel, nullptr) << kernel_name;
  bots::KernelConfig config;
  config.threads = threads;
  config.size = bots::SizeClass::kTest;

  // Warmups share out.registry: register_region dedupes by (name, type),
  // so the recording and the measured replay see identical handles.
  for (int i = 0; i + 1 < iterations; ++i) {
    const bots::KernelResult warm =
        kernel->run(runtime, out.registry, config);
    ASSERT_TRUE(warm.ok) << kernel_name << " warmup failed: " << warm.check;
  }

  Instrumentor instr(out.registry);
  telemetry::Registry telem;
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  runtime.set_telemetry(&telem);
  out.result = kernel->run(runtime, out.registry, config);
  runtime.set_hooks(nullptr);
  runtime.set_telemetry(nullptr);
  instr.finalize();
  out.profile = instr.aggregate();
  out.snapshot = telem.snapshot();
}

check::ProfileProjection project(const Measured& m, const char* label) {
  check::ProfileProjection p =
      check::project_profile(m.profile, m.registry, m.result.stats);
  p.engine = label;
  return p;
}

/// Replay runs must attribute exactly what a chase_lev run attributes:
/// same construct instance/creation counts, same checksum.  This is the
/// acceptance criterion "profile output projection-equal to a chase_lev
/// run" — checked across BOTS kernels with distinct shapes (binary
/// recursion, irregular pruning, single-construct wavefront).
TEST(TaskGraphReplay, ProjectionEqualsChaseLevAcrossKernels) {
  for (const char* name : {"fib", "nqueens", "sparselu"}) {
    SCOPED_TRACE(name);

    Measured base;
    rt::RealConfig chase;
    chase.scheduler = rt::SchedulerKind::kChaseLev;
    rt::RealRuntime chase_rt(chase);
    run_kernel(base, chase_rt, name, /*threads=*/2, /*iterations=*/1);
    ASSERT_TRUE(base.result.ok) << base.result.check;

    Measured replayed;
    rt::RealConfig graph;
    graph.scheduler = rt::SchedulerKind::kTaskGraph;
    rt::RealRuntime graph_rt(graph);
    run_kernel(replayed, graph_rt, name, /*threads=*/2, /*iterations=*/3);
    ASSERT_TRUE(replayed.result.ok) << replayed.result.check;

    EXPECT_TRUE(graph_rt.taskgraph_recorded());
    EXPECT_FALSE(graph_rt.taskgraph_stale())
        << name << " diverged on replay";
    EXPECT_GT(graph_rt.taskgraph_size(), 0u);
    EXPECT_EQ(base.result.checksum, replayed.result.checksum);

    const std::vector<std::string> diffs = check::diff_projections(
        project(base, "chase_lev"), project(replayed, "taskgraph"));
    std::string joined;
    for (const std::string& d : diffs) joined += d + "\n";
    EXPECT_TRUE(diffs.empty()) << joined;

    // The measured iteration was a replay served from the static slots.
    using telemetry::Counter;
    EXPECT_GE(replayed.snapshot.counter(Counter::kTaskgraphReplays), 1u);
    EXPECT_GT(replayed.snapshot.counter(Counter::kTaskgraphStaticSpawns),
              0u);
    EXPECT_EQ(replayed.snapshot.counter(Counter::kTaskgraphDivergences),
              0u);
  }
}

/// Fibonacci task body used by the divergence tests: shape depends only
/// on (n, cut), so changing either between regions changes the spawn
/// structure deterministically.
void fib_region(rt::TaskContext& ctx, RegionHandle task, int n,
                long* result) {
  ctx.work(50);
  if (n < 2) {
    *result = n;
    return;
  }
  long a = 0;
  long b = 0;
  rt::TaskAttrs attrs;
  attrs.region = task;
  ctx.create_task(
      [task, n, &a](rt::TaskContext& c) { fib_region(c, task, n - 1, &a); },
      attrs);
  ctx.create_task(
      [task, n, &b](rt::TaskContext& c) { fib_region(c, task, n - 2, &b); },
      attrs);
  ctx.taskwait();
  *result = a + b;
}

long fib_serial(int n) {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

/// A replay region whose program spawns a DIFFERENT shape must (a) still
/// compute the right answer, (b) count a divergence, and (c) mark the
/// graph stale so later regions run fully dynamic (fallback).
TEST(TaskGraphReplay, DivergentShapeFallsBackAndStaysCorrect) {
  rt::RealConfig config;
  config.scheduler = rt::SchedulerKind::kTaskGraph;
  rt::RealRuntime runtime(config);
  telemetry::Registry telem;
  runtime.set_telemetry(&telem);
  RegionRegistry registry;
  const RegionHandle task =
      registry.register_region("fib_task", RegionType::kTask);

  auto run_fib = [&](int n) {
    long result = 0;
    (void)runtime.parallel(2, [&](rt::TaskContext& ctx) {
      if (ctx.single()) fib_region(ctx, task, n, &result);
    });
    return result;
  };

  EXPECT_EQ(run_fib(10), fib_serial(10));  // records
  ASSERT_TRUE(runtime.taskgraph_recorded());
  EXPECT_EQ(run_fib(10), fib_serial(10));  // replays cleanly
  EXPECT_FALSE(runtime.taskgraph_stale());

  // Bigger problem: the recorded graph is too small — divergence.
  EXPECT_EQ(run_fib(12), fib_serial(12));
  EXPECT_TRUE(runtime.taskgraph_stale());

  // Stale graph: later regions run dynamic (fallback), still correct.
  EXPECT_EQ(run_fib(8), fib_serial(8));
  EXPECT_EQ(run_fib(12), fib_serial(12));

  using telemetry::Counter;
  const telemetry::Snapshot snap = telem.snapshot();
  EXPECT_EQ(snap.counter(Counter::kTaskgraphRecords), 1u);
  EXPECT_GE(snap.counter(Counter::kTaskgraphDivergences), 1u);
  EXPECT_GE(snap.counter(Counter::kTaskgraphFallbacks), 2u);
  EXPECT_GT(snap.counter(Counter::kTaskgraphDynamicSpawns), 0u);
  runtime.set_telemetry(nullptr);

  // reset_taskgraph(): the next region records afresh and replay works
  // again for the new shape.
  runtime.reset_taskgraph();
  EXPECT_FALSE(runtime.taskgraph_recorded());
  EXPECT_EQ(run_fib(9), fib_serial(9));  // re-record
  EXPECT_TRUE(runtime.taskgraph_recorded());
  EXPECT_FALSE(runtime.taskgraph_stale());
  EXPECT_EQ(run_fib(9), fib_serial(9));  // replay of the new graph
  EXPECT_FALSE(runtime.taskgraph_stale());
}

/// A shrinking shape (fewer spawns than recorded) exercises the
/// short-spawn / hole-sweep cancellation paths rather than the
/// more-spawns-than-recorded path.
TEST(TaskGraphReplay, ShrinkingShapeIsDetected) {
  rt::RealConfig config;
  config.scheduler = rt::SchedulerKind::kTaskGraph;
  rt::RealRuntime runtime(config);
  RegionRegistry registry;
  const RegionHandle task =
      registry.register_region("leaf", RegionType::kTask);

  auto run_spawner = [&](int count) {
    std::vector<long> hit(static_cast<std::size_t>(count), 0);
    (void)runtime.parallel(2, [&](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      rt::TaskAttrs attrs;
      attrs.region = task;
      for (int i = 0; i < count; ++i) {
        ctx.create_task(
            [&hit, i](rt::TaskContext& c) {
              c.work(20);
              hit[static_cast<std::size_t>(i)] = 1;
            },
            attrs);
      }
      ctx.taskwait();
    });
    long sum = 0;
    for (const long h : hit) sum += h;
    return sum;
  };

  EXPECT_EQ(run_spawner(40), 40);  // records 40 root spawns
  ASSERT_TRUE(runtime.taskgraph_recorded());
  EXPECT_EQ(run_spawner(25), 25);  // replays short: 15 recorded holes
  EXPECT_TRUE(runtime.taskgraph_stale());
  EXPECT_EQ(run_spawner(40), 40);  // stale -> dynamic, still correct
}

/// The perturbation-immunity fuzz: under aggressive seeded schedule
/// perturbation (yield injection, steal-first inversion, victim
/// rotation), replay regions must neither diverge nor change the
/// profile projection — placement comes from the run lists, not from
/// race outcomes.  Each seed uses a fresh runtime (record + replay).
TEST(TaskGraphReplay, ReplayIsImmuneToSchedulePerturbation) {
  check::ProfileProjection reference;
  bool have_reference = false;
  std::uint64_t reference_checksum = 0;

  for (const std::uint64_t seed : {1u, 7u, 99u, 1234u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const rt::SchedulePolicy policy(seed);
    rt::RealConfig config;
    config.scheduler = rt::SchedulerKind::kTaskGraph;
    config.policy = &policy;
    rt::RealRuntime runtime(config);

    Measured m;
    run_kernel(m, runtime, "fib", /*threads=*/2, /*iterations=*/2);
    ASSERT_TRUE(m.result.ok) << m.result.check;
    EXPECT_FALSE(runtime.taskgraph_stale()) << "perturbation caused "
                                               "divergence";

    check::ProfileProjection p = project(m, "taskgraph");
    if (!have_reference) {
      reference = p;
      reference.engine = "reference";
      reference_checksum = m.result.checksum;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(m.result.checksum, reference_checksum);
    const std::vector<std::string> diffs =
        check::diff_projections(reference, p);
    std::string joined;
    for (const std::string& d : diffs) joined += d + "\n";
    EXPECT_TRUE(diffs.empty()) << joined;
  }
}

}  // namespace
}  // namespace taskprof
