// Work/span accounting regressions, focused on the degenerate traces
// that used to mis-attribute: zero-duration tasks falling off the
// critical chain, and region-less tasks rendered with a raw handle
// number instead of a stable label.
#include <gtest/gtest.h>

#include "diagnose/workspan.hpp"
#include "profile/region.hpp"
#include "trace/analysis.hpp"

namespace taskprof {
namespace {

trace::TaskLifetime make_task(TaskInstanceId id, TaskInstanceId parent,
                              RegionHandle region, Ticks active) {
  trace::TaskLifetime life;
  life.id = id;
  life.parent = parent;
  life.region = region;
  life.active = active;
  life.started = true;
  life.completed = true;
  return life;
}

TEST(WorkSpan, EmptyAnalysisYieldsEmptySummary) {
  trace::TraceAnalysis analysis;
  RegionRegistry registry;
  const diag::WorkSpanSummary ws = diag::compute_workspan(analysis, registry);
  EXPECT_EQ(ws.work, 0);
  EXPECT_EQ(ws.span, 0);
  EXPECT_EQ(ws.span_length, 0);
  EXPECT_TRUE(ws.span_tasks.empty());
  EXPECT_TRUE(ws.shares.empty());
  EXPECT_EQ(ws.logical_parallelism(), 0.0);
}

TEST(WorkSpan, ZeroDurationDescendantsStayOnTheChain) {
  // 1(100) -> 2(0) -> 3(0): the heaviest chain must run to the leaf even
  // though the subtree below 1 contributes no time.  The old
  // implementation dropped ties (`sub.time > best.time`), cutting the
  // chain at the first zero-duration child.
  RegionRegistry registry;
  const RegionHandle region =
      registry.register_region("zero_chain", RegionType::kTask);
  trace::TraceAnalysis analysis;
  analysis.tasks.push_back(make_task(1, kImplicitTaskId, region, 100));
  analysis.tasks.push_back(make_task(2, 1, region, 0));
  analysis.tasks.push_back(make_task(3, 2, region, 0));

  const diag::WorkSpanSummary ws = diag::compute_workspan(analysis, registry);
  EXPECT_EQ(ws.work, 100);
  EXPECT_EQ(ws.span, 100);
  EXPECT_EQ(ws.span_length, 3);
  ASSERT_EQ(ws.span_tasks.size(), 3u);
  EXPECT_EQ(ws.span_tasks[0], 1u);
  EXPECT_EQ(ws.span_tasks[1], 2u);
  EXPECT_EQ(ws.span_tasks[2], 3u);
  ASSERT_EQ(ws.shares.size(), 1u);
  EXPECT_EQ(ws.shares[0].instances, 3);
}

TEST(WorkSpan, AllZeroDurationTasksStillFormAChain) {
  RegionRegistry registry;
  const RegionHandle region =
      registry.register_region("all_zero", RegionType::kTask);
  trace::TraceAnalysis analysis;
  analysis.tasks.push_back(make_task(1, kImplicitTaskId, region, 0));
  analysis.tasks.push_back(make_task(2, 1, region, 0));

  const diag::WorkSpanSummary ws = diag::compute_workspan(analysis, registry);
  EXPECT_EQ(ws.span, 0);
  EXPECT_EQ(ws.span_length, 2);
  ASSERT_EQ(ws.span_tasks.size(), 2u);
  EXPECT_EQ(ws.span_tasks.front(), 1u);
}

TEST(WorkSpan, TieOnTimePrefersLongerChainThenSmallerId) {
  // Root 1 has two subtrees of equal weight: child 2 (50, leaf) and
  // child 3 (50) -> 4 (0).  Equal time, so the longer chain through 3
  // wins; among equal-length equal-time chains the smaller id wins.
  RegionRegistry registry;
  const RegionHandle region =
      registry.register_region("tie", RegionType::kTask);
  trace::TraceAnalysis analysis;
  analysis.tasks.push_back(make_task(1, kImplicitTaskId, region, 10));
  analysis.tasks.push_back(make_task(2, 1, region, 50));
  analysis.tasks.push_back(make_task(3, 1, region, 50));
  analysis.tasks.push_back(make_task(4, 3, region, 0));

  const diag::WorkSpanSummary ws = diag::compute_workspan(analysis, registry);
  EXPECT_EQ(ws.span, 60);
  EXPECT_EQ(ws.span_length, 3);
  ASSERT_EQ(ws.span_tasks.size(), 3u);
  EXPECT_EQ(ws.span_tasks[1], 3u);
  EXPECT_EQ(ws.span_tasks[2], 4u);
}

TEST(WorkSpan, RegionlessTasksGetAStableLabel) {
  // Tasks recorded without a region (hand-built or truncated traces) must
  // not render as "region 4294967295".
  RegionRegistry registry;
  trace::TraceAnalysis analysis;
  analysis.tasks.push_back(make_task(1, kImplicitTaskId, kInvalidRegion, 30));

  const diag::WorkSpanSummary ws = diag::compute_workspan(analysis, registry);
  ASSERT_EQ(ws.shares.size(), 1u);
  EXPECT_EQ(ws.shares[0].name, "(unattributed)");
  EXPECT_EQ(diag::construct_display_name(kInvalidRegion, registry),
            "(unattributed)");
}

TEST(WorkSpan, OrphanedTasksAreChainRoots) {
  // Task 7's parent (99) never completed: it must still be considered a
  // chain root rather than vanish from the span.
  RegionRegistry registry;
  const RegionHandle region =
      registry.register_region("orphan", RegionType::kTask);
  trace::TraceAnalysis analysis;
  analysis.tasks.push_back(make_task(7, 99, region, 80));
  analysis.tasks.push_back(make_task(8, kImplicitTaskId, region, 20));

  const diag::WorkSpanSummary ws = diag::compute_workspan(analysis, registry);
  EXPECT_EQ(ws.span, 80);
  ASSERT_EQ(ws.span_tasks.size(), 1u);
  EXPECT_EQ(ws.span_tasks[0], 7u);
}

TEST(WorkSpan, ForestChainHonorsCustomDurations) {
  // The what-if projector re-queries the chain under scaled durations:
  // halving task 2's cost must move the span to the other subtree.
  RegionRegistry registry;
  const RegionHandle hot =
      registry.register_region("hot", RegionType::kTask);
  const RegionHandle cold =
      registry.register_region("cold", RegionType::kTask);
  trace::TraceAnalysis analysis;
  analysis.tasks.push_back(make_task(1, kImplicitTaskId, cold, 10));
  analysis.tasks.push_back(make_task(2, 1, hot, 100));
  analysis.tasks.push_back(make_task(3, 1, cold, 70));

  const diag::CreationForest forest(analysis);
  const auto measured = forest.heaviest_chain(
      [](const trace::TaskLifetime& t) { return t.active; });
  EXPECT_EQ(measured.time, 110);
  ASSERT_EQ(measured.tasks.size(), 2u);
  EXPECT_EQ(measured.tasks[1], 2u);

  const auto scaled = forest.heaviest_chain(
      [hot](const trace::TaskLifetime& t) {
        return t.region == hot ? t.active / 2 : t.active;
      });
  EXPECT_EQ(scaled.time, 80);
  ASSERT_EQ(scaled.tasks.size(), 2u);
  EXPECT_EQ(scaled.tasks[1], 3u);
}

}  // namespace
}  // namespace taskprof
