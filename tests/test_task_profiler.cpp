// Tests of the paper's task-profiling algorithm (Fig. 12), replaying the
// event streams of the paper's figures with hand-picked timestamps.
#include "measure/task_profiler.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "profile/region.hpp"

namespace taskprof {
namespace {

class TaskProfilerTest : public ::testing::Test {
 protected:
  TaskProfilerTest() { reset({}); }

  void reset(MeasureOptions options) {
    clock_.set(0);
    prof_ = std::make_unique<ThreadTaskProfiler>(0, clock_, implicit_,
                                                 options);
  }

  RegionRegistry registry_;
  ManualClock clock_;
  RegionHandle implicit_ =
      registry_.register_region("implicit task", RegionType::kImplicitTask);
  RegionHandle main_ = registry_.register_region("main", RegionType::kFunction);
  RegionHandle foo_ = registry_.register_region("foo", RegionType::kFunction);
  RegionHandle bar_ = registry_.register_region("bar", RegionType::kFunction);
  RegionHandle barrier_ = registry_.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  RegionHandle taskwait_ =
      registry_.register_region("taskwait", RegionType::kTaskwait);
  RegionHandle create_ =
      registry_.register_region("create task", RegionType::kTaskCreate);
  RegionHandle task_a_ =
      registry_.register_region("taskA", RegionType::kTask);
  RegionHandle task_b_ =
      registry_.register_region("taskB", RegionType::kTask);
  std::unique_ptr<ThreadTaskProfiler> prof_;
};

// ---- Paper Fig. 1: plain nested event stream -> profile -------------------

TEST_F(TaskProfilerTest, Fig1NestedFunctionsBuildCallTree) {
  prof_->enter(main_);           // t=0
  clock_.set(1);
  prof_->enter(foo_);
  clock_.set(3);
  prof_->exit(foo_);
  clock_.set(4);
  prof_->enter(bar_);
  clock_.set(7);
  prof_->exit(bar_);
  clock_.set(10);
  prof_->exit(main_);
  prof_->finalize();

  const CallNode* root = prof_->implicit_root();
  const CallNode* main_node = find_path(const_cast<CallNode*>(root), {main_});
  ASSERT_NE(main_node, nullptr);
  EXPECT_EQ(main_node->inclusive, 10);
  EXPECT_EQ(main_node->visits, 1u);
  const CallNode* foo_node =
      find_path(const_cast<CallNode*>(root), {main_, foo_});
  ASSERT_NE(foo_node, nullptr);
  EXPECT_EQ(foo_node->inclusive, 2);
  const CallNode* bar_node =
      find_path(const_cast<CallNode*>(root), {main_, bar_});
  ASSERT_NE(bar_node, nullptr);
  EXPECT_EQ(bar_node->inclusive, 3);
  // Exclusive time of main: 10 - 2 - 3 = 5.
  EXPECT_EQ(main_node->exclusive(), 5);
}

TEST_F(TaskProfilerTest, RepeatVisitsAccumulateOnOneNode) {
  for (int i = 0; i < 3; ++i) {
    prof_->enter(foo_);
    clock_.advance(4);
    prof_->exit(foo_);
    clock_.advance(1);
  }
  prof_->finalize();
  const CallNode* foo_node =
      find_path(const_cast<CallNode*>(prof_->implicit_root()), {foo_});
  ASSERT_NE(foo_node, nullptr);
  EXPECT_EQ(foo_node->visits, 3u);
  EXPECT_EQ(foo_node->inclusive, 12);
  EXPECT_EQ(foo_node->visit_stats.min, 4);
  EXPECT_EQ(foo_node->visit_stats.max, 4);
}

// ---- Paper Fig. 2: interleaved task fragments ------------------------------

TEST_F(TaskProfilerTest, Fig2InterleavedTaskFragmentsStayDistinct) {
  // Two instances of taskA, both enter foo, are suspended inside it, then
  // finish in interleaved order.  Without per-instance trees the exit
  // events would be ambiguous (the paper's point).
  prof_->enter(barrier_);
  clock_.set(10);
  prof_->task_begin(task_a_, 1);
  prof_->enter(foo_);
  clock_.set(14);
  prof_->task_begin(task_a_, 2);  // suspends instance 1 inside foo
  prof_->enter(foo_);
  clock_.set(19);
  prof_->task_switch(1);  // suspends instance 2 inside foo
  clock_.set(25);
  prof_->exit(foo_);  // instance 1's foo: 10..25 wall, minus 14..19 susp
  prof_->task_end(1);
  clock_.set(30);
  prof_->task_switch(2);
  clock_.set(37);
  prof_->exit(foo_);  // instance 2's foo: 14..37 wall, minus 19..30 susp
  prof_->task_end(2);
  clock_.set(40);
  prof_->exit(barrier_);
  prof_->finalize();

  const ThreadProfileView view = prof_->view();
  ASSERT_EQ(view.task_roots.size(), 1u);
  const CallNode* merged = view.task_roots[0];
  EXPECT_EQ(merged->region, task_a_);
  EXPECT_EQ(merged->visits, 2u);
  const CallNode* foo_node =
      find_child(const_cast<CallNode*>(merged), foo_);
  ASSERT_NE(foo_node, nullptr);
  EXPECT_EQ(foo_node->visits, 2u);
  // Instance 1 foo: enter 10 (as part of task t=10..25 minus susp 5)...
  // foo entered at 10, exited at 25, suspended 14..19 -> 10 ticks.
  // Instance 2 foo: entered 14, exited 37, suspended 19..30 -> 12 ticks.
  EXPECT_EQ(foo_node->visit_stats.min, 10);
  EXPECT_EQ(foo_node->visit_stats.max, 12);
  EXPECT_EQ(foo_node->inclusive, 22);
}

// ---- Paper Fig. 3: execution-site vs creation-site attribution ------------

TEST_F(TaskProfilerTest, Fig3ExecutionSiteKeepsExclusiveNonNegative) {
  prof_->enter(create_);
  prof_->note_task_created(1);
  clock_.set(1);
  prof_->exit(create_);
  prof_->enter(barrier_);
  clock_.set(2);
  prof_->task_begin(task_a_, 1);
  clock_.set(12);  // the task does the real work (10 ticks)
  prof_->task_end(1);
  clock_.set(13);
  prof_->exit(barrier_);
  prof_->finalize();

  const ThreadProfileView view = prof_->view();
  const CallNode* root = view.implicit_root;
  const CallNode* create_node =
      find_path(const_cast<CallNode*>(root), {create_});
  ASSERT_NE(create_node, nullptr);
  // Execution-site attribution: the create node keeps only creation time.
  EXPECT_EQ(create_node->exclusive(), 1);
  // The barrier's exclusive time excludes the task execution (stub).
  const CallNode* barrier_node =
      find_path(const_cast<CallNode*>(root), {barrier_});
  ASSERT_NE(barrier_node, nullptr);
  EXPECT_EQ(barrier_node->inclusive, 12);  // t=1..13
  EXPECT_EQ(barrier_node->exclusive(), 2);  // 12 - 10 in the stub
  // The task tree sits beside the main tree.
  ASSERT_EQ(view.task_roots.size(), 1u);
  EXPECT_EQ(view.task_roots[0]->inclusive, 10);
}

TEST_F(TaskProfilerTest, Fig3CreationSiteAblationGoesNegative) {
  MeasureOptions options;
  options.creation_site_attribution = true;
  reset(options);

  prof_->enter(create_);
  prof_->note_task_created(1);
  clock_.set(1);
  prof_->exit(create_);
  prof_->enter(barrier_);
  clock_.set(2);
  prof_->task_begin(task_a_, 1);
  clock_.set(12);
  prof_->task_end(1);
  clock_.set(13);
  prof_->exit(barrier_);
  prof_->finalize();

  const ThreadProfileView view = prof_->view();
  // The task tree was grafted under the creating node...
  EXPECT_TRUE(view.task_roots.empty());
  const CallNode* create_node = find_path(
      const_cast<CallNode*>(view.implicit_root), {create_});
  ASSERT_NE(create_node, nullptr);
  const CallNode* grafted =
      find_child(const_cast<CallNode*>(create_node), task_a_);
  ASSERT_NE(grafted, nullptr);
  EXPECT_EQ(grafted->inclusive, 10);
  // ...which produces the nonsensical negative exclusive creation time the
  // paper's Fig. 3 warns about: 1 - 10 = -9.
  EXPECT_EQ(create_node->exclusive(), -9);
}

// ---- Paper Figs. 6-11: algorithm state walk-through ------------------------

TEST_F(TaskProfilerTest, Fig6InitialStateIsImplicitTask) {
  EXPECT_EQ(prof_->current_task(), kImplicitTaskId);
  EXPECT_EQ(prof_->active_instances(), 0u);
}

TEST_F(TaskProfilerTest, Figs7to11FullWalkthrough) {
  // Fig. 7: the implicit task created two tasks of construct A and entered
  // the barrier.
  prof_->enter(create_);
  clock_.set(1);
  prof_->exit(create_);
  prof_->enter(create_);
  clock_.set(2);
  prof_->exit(create_);
  clock_.set(10);
  prof_->enter(barrier_);
  EXPECT_EQ(prof_->current_task(), kImplicitTaskId);

  // Fig. 8: instance 1 starts inside the barrier.
  prof_->task_begin(task_a_, 1);
  EXPECT_EQ(prof_->current_task(), 1u);
  EXPECT_EQ(prof_->active_instances(), 1u);
  {
    const CallNode* barrier_node = find_path(
        const_cast<CallNode*>(prof_->implicit_root()), {barrier_});
    const CallNode* stub = find_child(const_cast<CallNode*>(barrier_node),
                                      task_a_, kNoParameter, true);
    ASSERT_NE(stub, nullptr);
    EXPECT_EQ(stub->visits, 1u);
  }

  // Fig. 9: instance 1 suspends at its taskwait, instance 2 starts.
  clock_.set(12);
  prof_->enter(taskwait_);
  clock_.set(13);
  prof_->task_begin(task_a_, 2);
  EXPECT_EQ(prof_->current_task(), 2u);
  EXPECT_EQ(prof_->active_instances(), 2u);
  EXPECT_EQ(prof_->max_concurrent_instances(), 2u);

  // Fig. 10: instance 2 completes; it merges and instance 1 resumes.
  clock_.set(20);
  prof_->task_end(2);
  EXPECT_EQ(prof_->current_task(), kImplicitTaskId);
  EXPECT_EQ(prof_->active_instances(), 1u);
  {
    const ThreadProfileView view = prof_->view();
    ASSERT_EQ(view.task_roots.size(), 1u);
    EXPECT_EQ(view.task_roots[0]->visits, 1u);
    EXPECT_EQ(view.task_roots[0]->inclusive, 7);  // 13..20
  }
  clock_.set(21);
  prof_->task_switch(1);
  EXPECT_EQ(prof_->current_task(), 1u);

  // Fig. 11: instance 1 completes.
  clock_.set(30);
  prof_->exit(taskwait_);
  clock_.set(32);
  prof_->task_end(1);
  EXPECT_EQ(prof_->active_instances(), 0u);
  clock_.set(40);
  prof_->exit(barrier_);
  clock_.set(50);
  prof_->finalize();

  const ThreadProfileView view = prof_->view();
  ASSERT_EQ(view.task_roots.size(), 1u);
  const CallNode* merged = view.task_roots[0];
  EXPECT_EQ(merged->visits, 2u);
  // Instance 2: 7 ticks.  Instance 1: 10..32 wall minus 13..21 suspension
  // = 14 ticks.  Total 21.
  EXPECT_EQ(merged->inclusive, 21);
  EXPECT_EQ(merged->visit_stats.min, 7);
  EXPECT_EQ(merged->visit_stats.max, 14);
  // Taskwait inside instance 1: 12..30 wall minus 8 suspension = 10.
  const CallNode* wait_node =
      find_child(const_cast<CallNode*>(merged), taskwait_);
  ASSERT_NE(wait_node, nullptr);
  EXPECT_EQ(wait_node->inclusive, 10);

  // Stub accounting: fragments 10..13, 13..20, 21..32 => visits 3 (one per
  // executed fragment, across both instances), total 3 + 7 + 11 = 21.
  const CallNode* barrier_node =
      find_path(const_cast<CallNode*>(view.implicit_root), {barrier_});
  ASSERT_NE(barrier_node, nullptr);
  const CallNode* stub = find_child(const_cast<CallNode*>(barrier_node),
                                    task_a_, kNoParameter, true);
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->visits, 3u);
  EXPECT_EQ(stub->inclusive, 21);
  // Barrier: 10..40 inclusive = 30; exclusive = 30 - 21 = 9 (management /
  // idle, the paper's "103s not executing a task" reading of Fig. 5).
  EXPECT_EQ(barrier_node->inclusive, 30);
  EXPECT_EQ(barrier_node->exclusive(), 9);
  // Switch count: begin(1), begin(2), end(2), switch(1), end(1) -> 5
  // transitions in total.
  EXPECT_EQ(view.task_switches, 5u);
}

// ---- Options ----------------------------------------------------------------

TEST_F(TaskProfilerTest, PauseOffAttributesSuspensionToTask) {
  MeasureOptions options;
  options.pause_on_suspend = false;
  reset(options);

  prof_->enter(barrier_);
  clock_.set(10);
  prof_->task_begin(task_a_, 1);
  clock_.set(12);
  prof_->task_begin(task_a_, 2);  // suspend 1
  clock_.set(20);
  prof_->task_end(2);
  prof_->task_switch(1);
  clock_.set(25);
  prof_->task_end(1);
  prof_->exit(barrier_);
  prof_->finalize();

  const ThreadProfileView view = prof_->view();
  const CallNode* merged = view.task_roots[0];
  // Without pause/resume, instance 1 is charged its full 10..25 wall time
  // even though 12..20 belonged to instance 2 (double counting).
  EXPECT_EQ(merged->visit_stats.max, 15);
  EXPECT_EQ(merged->inclusive, 15 + 8);
}

TEST_F(TaskProfilerTest, StubsOffLeavesBarrierChildless) {
  MeasureOptions options;
  options.stub_nodes = false;
  reset(options);

  prof_->enter(barrier_);
  clock_.set(10);
  prof_->task_begin(task_a_, 1);
  clock_.set(20);
  prof_->task_end(1);
  clock_.set(21);
  prof_->exit(barrier_);
  prof_->finalize();

  const CallNode* barrier_node = find_path(
      const_cast<CallNode*>(prof_->implicit_root()), {barrier_});
  ASSERT_NE(barrier_node, nullptr);
  EXPECT_EQ(barrier_node->first_child, nullptr);
  // All 21 barrier ticks count as exclusive: task execution inside the
  // barrier is indistinguishable from waiting.
  EXPECT_EQ(barrier_node->exclusive(), 21);
}

// ---- Depth limit (paper §IV-B3: "tree depth limits") -----------------------

TEST_F(TaskProfilerTest, DepthLimitFoldsImplicitFrames) {
  MeasureOptions options;
  options.max_tree_depth = 3;  // implicit root + two levels
  reset(options);

  prof_->enter(main_);
  clock_.set(1);
  prof_->enter(foo_);
  clock_.set(2);
  prof_->enter(bar_);  // depth 4: folded into foo
  clock_.set(5);
  prof_->enter(bar_);  // nested fold
  clock_.set(6);
  prof_->exit(bar_);
  prof_->exit(bar_);
  clock_.set(8);
  prof_->exit(foo_);
  clock_.set(10);
  prof_->exit(main_);
  prof_->finalize();

  CallNode* root = const_cast<CallNode*>(prof_->implicit_root());
  const CallNode* foo_node = find_path(root, {main_, foo_});
  ASSERT_NE(foo_node, nullptr);
  // No bar nodes were created; their time stays in foo (1..8).
  EXPECT_EQ(foo_node->first_child, nullptr);
  EXPECT_EQ(foo_node->inclusive, 7);
  EXPECT_EQ(prof_->view().folded_events, 2u);
}

TEST_F(TaskProfilerTest, DepthLimitFoldsTaskFrames) {
  MeasureOptions options;
  options.max_tree_depth = 2;  // task root + one level
  reset(options);

  prof_->enter(barrier_);
  prof_->task_begin(task_a_, 1);
  clock_.set(1);
  prof_->enter(foo_);  // depth 2: kept
  clock_.set(2);
  prof_->enter(bar_);  // depth 3: folded
  clock_.set(4);
  prof_->exit(bar_);
  clock_.set(6);
  prof_->exit(foo_);
  clock_.set(8);
  prof_->task_end(1);
  prof_->exit(barrier_);
  prof_->finalize();

  const ThreadProfileView view = prof_->view();
  ASSERT_EQ(view.task_roots.size(), 1u);
  const CallNode* merged = view.task_roots[0];
  const CallNode* foo_node = find_child(const_cast<CallNode*>(merged), foo_);
  ASSERT_NE(foo_node, nullptr);
  EXPECT_EQ(foo_node->inclusive, 5);  // 1..6, bar folded in
  EXPECT_EQ(foo_node->first_child, nullptr);
  EXPECT_EQ(view.folded_events, 1u);
}

TEST_F(TaskProfilerTest, NoDepthLimitByDefault) {
  prof_->enter(main_);
  for (int i = 0; i < 200; ++i) prof_->enter(foo_);
  for (int i = 0; i < 200; ++i) prof_->exit(foo_);
  prof_->exit(main_);
  prof_->finalize();
  EXPECT_EQ(prof_->view().folded_events, 0u);
  // A 200-deep chain of foo nodes exists.
  CallNode* node = const_cast<CallNode*>(prof_->implicit_root());
  int depth = 0;
  node = find_child(node, main_);
  while ((node = find_child(node, foo_)) != nullptr) ++depth;
  EXPECT_EQ(depth, 200);
}

// ---- Parameters (paper Table IV) -------------------------------------------

TEST_F(TaskProfilerTest, ParameterizedTasksFormSeparateSubTrees) {
  prof_->enter(barrier_);
  prof_->task_begin(task_a_, 1, /*parameter=*/0);
  clock_.set(5);
  prof_->task_end(1);
  prof_->task_begin(task_a_, 2, /*parameter=*/1);
  clock_.set(8);
  prof_->task_end(2);
  prof_->task_begin(task_a_, 3, /*parameter=*/1);
  clock_.set(10);
  prof_->task_end(3);
  prof_->exit(barrier_);
  prof_->finalize();

  const ThreadProfileView view = prof_->view();
  ASSERT_EQ(view.task_roots.size(), 2u);
  const CallNode* depth0 = view.task_roots[0];
  const CallNode* depth1 = view.task_roots[1];
  EXPECT_EQ(depth0->parameter, 0);
  EXPECT_EQ(depth0->visits, 1u);
  EXPECT_EQ(depth0->inclusive, 5);
  EXPECT_EQ(depth1->parameter, 1);
  EXPECT_EQ(depth1->visits, 2u);
  EXPECT_EQ(depth1->inclusive, 3 + 2);
}

// ---- Recycling (paper §V-B) -------------------------------------------------

TEST_F(TaskProfilerTest, InstanceTreesAreRecycled) {
  prof_->enter(barrier_);
  auto run_instance = [&](TaskInstanceId id) {
    prof_->task_begin(task_a_, id);
    prof_->enter(foo_);
    clock_.advance(2);
    prof_->exit(foo_);
    clock_.advance(1);
    prof_->task_end(id);
  };
  run_instance(1);
  const std::size_t after_first = prof_->pool().allocated();
  for (TaskInstanceId id = 2; id <= 10; ++id) run_instance(id);
  // Later instances reuse recycled nodes: no new allocations at all.
  EXPECT_EQ(prof_->pool().allocated(), after_first);
  EXPECT_GT(prof_->pool().free_count(), 0u);
  prof_->exit(barrier_);
  prof_->finalize();
  EXPECT_EQ(prof_->view().task_roots[0]->visits, 10u);
}

TEST_F(TaskProfilerTest, MaxConcurrentTracksAndResets) {
  prof_->enter(barrier_);
  prof_->task_begin(task_a_, 1);
  prof_->task_begin(task_a_, 2);
  prof_->task_begin(task_b_, 3);
  EXPECT_EQ(prof_->max_concurrent_instances(), 3u);
  prof_->task_end(3);
  prof_->task_switch(2);
  prof_->task_end(2);
  prof_->task_switch(1);
  prof_->task_end(1);
  EXPECT_EQ(prof_->max_concurrent_instances(), 3u);
  prof_->reset_max_concurrent();
  EXPECT_EQ(prof_->max_concurrent_instances(), 0u);
  prof_->exit(barrier_);
  prof_->finalize();
}

// ---- Untied migration (paper §IV-D) ----------------------------------------

TEST_F(TaskProfilerTest, DetachAdoptMovesInstanceBetweenThreads) {
  ThreadTaskProfiler other(1, clock_, implicit_);

  prof_->enter(barrier_);
  other.enter(barrier_);
  clock_.set(10);
  prof_->task_begin(task_a_, 1);
  prof_->enter(foo_);
  clock_.set(14);
  prof_->task_switch(kImplicitTaskId);  // suspend before migration

  auto state = prof_->detach_instance(1);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(prof_->active_instances(), 0u);
  other.adopt_instance(std::move(state));

  clock_.set(20);
  other.task_switch(1);
  clock_.set(25);
  other.exit(foo_);  // 10..25 wall minus 14..20 suspension = 9
  other.task_end(1);
  clock_.set(30);
  prof_->exit(barrier_);
  other.exit(barrier_);
  prof_->finalize();
  other.finalize();

  // The merged tree lives on the completing thread.
  EXPECT_TRUE(prof_->view().task_roots.empty());
  ASSERT_EQ(other.view().task_roots.size(), 1u);
  const CallNode* merged = other.view().task_roots[0];
  EXPECT_EQ(merged->visits, 1u);
  EXPECT_EQ(merged->inclusive, 9);  // 10..25 minus 6 suspended
  const CallNode* foo_node =
      find_child(const_cast<CallNode*>(merged), foo_);
  ASSERT_NE(foo_node, nullptr);
  EXPECT_EQ(foo_node->inclusive, 9);

  // The instance-tree nodes were returned to the *home* thread's pool.
  EXPECT_GT(prof_->pool().free_count(), 0u);

  // Stub fragments: 4 ticks on thread 0, 5 ticks on thread 1.
  const CallNode* stub0 =
      find_child(find_path(const_cast<CallNode*>(prof_->implicit_root()),
                           {barrier_}),
                 task_a_, kNoParameter, true);
  ASSERT_NE(stub0, nullptr);
  EXPECT_EQ(stub0->inclusive, 4);
  const CallNode* stub1 =
      find_child(find_path(const_cast<CallNode*>(other.implicit_root()),
                           {barrier_}),
                 task_a_, kNoParameter, true);
  ASSERT_NE(stub1, nullptr);
  EXPECT_EQ(stub1->inclusive, 5);
}

// ---- Error handling ----------------------------------------------------------

using TaskProfilerDeathTest = TaskProfilerTest;

TEST_F(TaskProfilerDeathTest, MismatchedExitAborts) {
  prof_->enter(foo_);
  EXPECT_DEATH(prof_->exit(bar_), "does not match");
}

TEST_F(TaskProfilerDeathTest, TaskEndOfNonCurrentAborts) {
  prof_->task_begin(task_a_, 1);
  prof_->task_begin(task_a_, 2);
  EXPECT_DEATH(prof_->task_end(1), "current");
}

TEST_F(TaskProfilerDeathTest, UnbalancedTaskEndAborts) {
  prof_->task_begin(task_a_, 1);
  prof_->enter(foo_);
  EXPECT_DEATH(prof_->task_end(1), "unbalanced");
}

}  // namespace
}  // namespace taskprof
