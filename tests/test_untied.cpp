// Untied-task profiling with migration: the paper's §IV-D design, which
// the authors specified but could not exercise ("we cannot support those
// tasks unless the runtime system provides support for these events") —
// our simulator provides the events.
#include <gtest/gtest.h>

#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

rt::TaskAttrs untied_attrs(RegionHandle region) {
  rt::TaskAttrs attrs;
  attrs.region = region;
  attrs.binding = rt::TaskBinding::kUntied;
  return attrs;
}

class UntiedProfilingTest : public ::testing::Test {
 protected:
  RegionRegistry registry_;
  RegionHandle task_ =
      registry_.register_region("untied_task", RegionType::kTask);
  RegionHandle child_ =
      registry_.register_region("child_task", RegionType::kTask);

  rt::TeamStats run_migrating_program(rt::SimRuntime& sim, int outer_tasks) {
    return sim.parallel(4, [this, outer_tasks](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      for (int i = 0; i < outer_tasks; ++i) {
        ctx.create_task(
            [this](rt::TaskContext& outer) {
              outer.work(3'000);
              rt::TaskAttrs child_attrs;
              child_attrs.region = child_;
              outer.create_task(
                  [](rt::TaskContext& c) { c.work(30'000); }, child_attrs);
              outer.taskwait();  // suspension point: may migrate
              outer.work(2'000);
            },
            untied_attrs(task_));
      }
    });
  }
};

TEST_F(UntiedProfilingTest, MigratedTasksProfileConsistently) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  const auto stats = run_migrating_program(sim, 24);
  sim.set_hooks(nullptr);
  instr.finalize();
  ASSERT_GT(stats.migrations, 0u) << "program must actually migrate";

  const AggregateProfile agg = instr.aggregate();
  const CallNode* untied_root = agg.task_root(task_);
  ASSERT_NE(untied_root, nullptr);
  EXPECT_EQ(untied_root->visits, 24u);
  // Every instance executed 5 us of declared work plus overheads; the
  // suspension interval must have been subtracted (paper §IV-B3), so the
  // mean inclusive time is far below the 30 us the child takes.
  EXPECT_GT(untied_root->visit_stats.mean(), 5'000.0);
  EXPECT_LT(untied_root->visit_stats.mean(), 20'000.0);

  const CallNode* child_root = agg.task_root(child_);
  ASSERT_NE(child_root, nullptr);
  EXPECT_EQ(child_root->visits, 24u);
}

TEST_F(UntiedProfilingTest, StubTimeStillEqualsTaskTreeTime) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_migrating_program(sim, 16);
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();

  Ticks stub_total = 0;
  for_each_node(agg.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) stub_total += node.inclusive;
  });
  Ticks task_total = 0;
  for (const CallNode* root : agg.task_roots) task_total += root->inclusive;
  EXPECT_EQ(stub_total, task_total);
}

TEST_F(UntiedProfilingTest, NoNegativeExclusiveAfterMigration) {
  rt::SimRuntime sim;
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  run_migrating_program(sim, 24);
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();
  for_each_node(agg.implicit_root, [](const CallNode& node, int) {
    EXPECT_GE(node.exclusive(), 0);
  });
  for (const CallNode* root : agg.task_roots) {
    for_each_node(root, [](const CallNode& node, int) {
      EXPECT_GE(node.exclusive(), 0);
    });
  }
}

TEST_F(UntiedProfilingTest, DeterministicWithInstrumentation) {
  auto run = [this] {
    rt::SimRuntime sim;
    Instrumentor instr(registry_);
    sim.set_hooks(&instr);
    const auto stats = run_migrating_program(sim, 24);
    sim.set_hooks(nullptr);
    instr.finalize();
    return stats;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.parallel_ticks, b.parallel_ticks);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST_F(UntiedProfilingTest, MigrationDisabledKeepsTasksHome) {
  rt::SimConfig config;
  config.untied_migration = false;
  rt::SimRuntime sim(config);
  Instrumentor instr(registry_);
  sim.set_hooks(&instr);
  const auto stats = run_migrating_program(sim, 24);
  sim.set_hooks(nullptr);
  instr.finalize();
  EXPECT_EQ(stats.migrations, 0u);
  const AggregateProfile agg = instr.aggregate();
  const CallNode* untied_root = agg.task_root(task_);
  ASSERT_NE(untied_root, nullptr);
  EXPECT_EQ(untied_root->visits, 24u);
}

}  // namespace
}  // namespace taskprof
