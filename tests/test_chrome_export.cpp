// Tests for the Chrome trace-event exporter (src/trace/chrome_export):
// a golden-file check of the rendered JSON for a small hand-built trace,
// structural validity (balanced B/E per track, balanced braces), thread
// metadata mapping, string escaping, and the file-writing entry point.
#include "trace/chrome_export.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "profile/region.hpp"
#include "rt/sim_runtime.hpp"
#include "trace/recorder.hpp"

namespace taskprof {
namespace {

using trace::ChromeExportOptions;
using trace::EventKind;
using trace::Trace;
using trace::TraceEvent;

TraceEvent make_event(Ticks time, ThreadId thread, EventKind kind,
                      TaskInstanceId task = kImplicitTaskId,
                      RegionHandle region = kInvalidRegion) {
  TraceEvent event;
  event.time = time;
  event.thread = thread;
  event.kind = kind;
  event.task = task;
  event.region = region;
  return event;
}

/// Two threads: thread 0 creates task 7 and taskwaits; thread 1 steals
/// and runs it.  Timestamps are hand-picked so the golden text is stable.
Trace small_trace(RegionHandle fib) {
  std::vector<std::vector<TraceEvent>> per_thread(2);
  per_thread[0] = {
      make_event(1000, 0, EventKind::kImplicitBegin),
      make_event(2000, 0, EventKind::kCreateBegin, kImplicitTaskId, fib),
      make_event(3000, 0, EventKind::kCreateEnd, 7, fib),
      make_event(4000, 0, EventKind::kTaskwaitBegin),
      make_event(6000, 0, EventKind::kTaskwaitEnd),
      make_event(9000, 0, EventKind::kImplicitEnd),
  };
  per_thread[1] = {
      make_event(1500, 1, EventKind::kImplicitBegin),
      make_event(5000, 1, EventKind::kTaskBegin, 7, fib),
      make_event(5500, 1, EventKind::kTaskEnd, 7),
      make_event(9000, 1, EventKind::kImplicitEnd),
  };
  return Trace(std::move(per_thread));
}

// The full expected document: every line asserted, including the steal
// instant on thread 1, the create instant on thread 0, and the derived
// counter tracks.
constexpr const char* kGolden =
    R"({"displayTimeUnit": "ms",
"traceEvents": [
{"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "taskprof"}},
{"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "worker 0"}},
{"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 0, "args": {"sort_index": 0}},
{"name": "implicit task", "ph": "B", "pid": 1, "tid": 0, "ts": 0.000},
{"name": "create fib", "ph": "B", "pid": 1, "tid": 0, "ts": 1.000},
{"name": "", "ph": "E", "pid": 1, "tid": 0, "ts": 2.000},
{"name": "create", "ph": "i", "pid": 1, "tid": 0, "ts": 2.000, "s": "t", "args": {"task": 7}},
{"name": "taskwait", "ph": "B", "pid": 1, "tid": 0, "ts": 3.000},
{"name": "", "ph": "E", "pid": 1, "tid": 0, "ts": 5.000},
{"name": "", "ph": "E", "pid": 1, "tid": 0, "ts": 8.000},
{"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "worker 1"}},
{"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 1, "args": {"sort_index": 1}},
{"name": "implicit task", "ph": "B", "pid": 1, "tid": 1, "ts": 0.500},
{"name": "steal", "ph": "i", "pid": 1, "tid": 1, "ts": 4.000, "s": "t", "args": {"task": 7, "from": 0}},
{"name": "fib", "ph": "B", "pid": 1, "tid": 1, "ts": 4.000, "args": {"task": 7, "stolen": "true"}},
{"name": "", "ph": "E", "pid": 1, "tid": 1, "ts": 4.500},
{"name": "", "ph": "E", "pid": 1, "tid": 1, "ts": 8.000},
{"name": "tasks queued", "ph": "C", "pid": 1, "tid": 0, "ts": 2.000, "args": {"value": 1}},
{"name": "tasks queued", "ph": "C", "pid": 1, "tid": 0, "ts": 4.000, "args": {"value": 0}},
{"name": "tasks executing", "ph": "C", "pid": 1, "tid": 0, "ts": 4.000, "args": {"value": 1}},
{"name": "tasks executing", "ph": "C", "pid": 1, "tid": 0, "ts": 4.500, "args": {"value": 0}}
]}
)";

TEST(ChromeExport, GoldenSmallTrace) {
  RegionRegistry registry;
  const RegionHandle fib = registry.register_region("fib", RegionType::kTask);
  ChromeExportOptions options;
  options.registry = &registry;
  EXPECT_EQ(render_chrome_trace(small_trace(fib), options), kGolden);
}

// Per-tid B/E counts over a rendered document.  Leans on the one-event-
// per-line output shape.
std::map<int, int> be_imbalance(const std::string& doc) {
  std::map<int, int> balance;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    const auto ph = line.find("\"ph\": \"");
    const auto tid = line.find("\"tid\": ");
    if (ph == std::string::npos || tid == std::string::npos) continue;
    const char phase = line[ph + 7];
    const int t = std::stoi(line.substr(tid + 7));
    if (phase == 'B') ++balance[t];
    if (phase == 'E') --balance[t];
  }
  return balance;
}

TEST(ChromeExport, RecordedSimTraceIsBalancedAndBracketed) {
  RegionRegistry registry;
  const RegionHandle task =
      registry.register_region("t", RegionType::kTask);
  rt::SimRuntime sim;
  trace::TraceRecorder recorder;
  sim.set_hooks(&recorder);
  sim.parallel(4, [task](rt::TaskContext& ctx) {
    if (ctx.single()) {
      for (int i = 0; i < 32; ++i) {
        rt::TaskAttrs attrs;
        attrs.region = task;
        ctx.create_task(
            [](rt::TaskContext& inner) { inner.work(100); }, attrs);
      }
      ctx.taskwait();
    }
    ctx.barrier();
  });
  sim.set_hooks(nullptr);

  ChromeExportOptions options;
  options.registry = &registry;
  const std::string doc =
      render_chrome_trace(recorder.take(), options);

  // Document-level structure: balanced braces/brackets, one trailing
  // newline, a traceEvents array.
  EXPECT_NE(doc.find("\"traceEvents\": ["), std::string::npos);
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (c == '"' && (i == 0 || doc[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // Every track's duration events pair up.
  for (const auto& [tid, imbalance] : be_imbalance(doc)) {
    EXPECT_EQ(imbalance, 0) << "tid " << tid;
  }

  // One thread_name metadata record per worker, named after its id.
  for (int tid = 0; tid < 4; ++tid) {
    const std::string meta = "\"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                             "\"tid\": " +
                             std::to_string(tid);
    EXPECT_NE(doc.find(meta), std::string::npos) << "tid " << tid;
    EXPECT_NE(doc.find("\"worker " + std::to_string(tid) + "\""),
              std::string::npos);
  }

  // All 32 creates show up as instants; every task slice carries its name.
  std::size_t creates = 0;
  for (std::size_t pos = doc.find("\"name\": \"create\", \"ph\": \"i\"");
       pos != std::string::npos;
       pos = doc.find("\"name\": \"create\", \"ph\": \"i\"", pos + 1)) {
    ++creates;
  }
  EXPECT_EQ(creates, 32u);
  EXPECT_NE(doc.find("\"name\": \"t\", \"ph\": \"B\""), std::string::npos);
}

TEST(ChromeExport, EscapesRegionNames) {
  RegionRegistry registry;
  const RegionHandle weird = registry.register_region(
      "qu\"ote\\back\nline", RegionType::kTask);
  std::vector<std::vector<TraceEvent>> per_thread(1);
  per_thread[0] = {
      make_event(0, 0, EventKind::kTaskBegin, 1, weird),
      make_event(10, 0, EventKind::kTaskEnd, 1),
  };
  ChromeExportOptions options;
  options.registry = &registry;
  const std::string doc =
      render_chrome_trace(Trace(std::move(per_thread)), options);
  EXPECT_NE(doc.find("qu\\\"ote\\\\back\\nline"), std::string::npos);
}

TEST(ChromeExport, TelemetryCountersBecomeTracks) {
  RegionRegistry registry;
  const RegionHandle fib = registry.register_region("fib", RegionType::kTask);
  telemetry::Registry telem;
  telem.prepare(1);
  telem.add(0, telemetry::Counter::kStealAttempts, 5);

  ChromeExportOptions options;
  options.registry = &registry;
  const telemetry::Snapshot snap = telem.snapshot();
  options.telemetry = &snap;
  const std::string doc = render_chrome_trace(small_trace(fib), options);
  EXPECT_NE(doc.find("\"telemetry steal_attempts\""), std::string::npos);
  EXPECT_NE(doc.find("{\"value\": 5}"), std::string::npos);
  // Zero counters are skipped.
  EXPECT_EQ(doc.find("\"telemetry tasks_created\""), std::string::npos);
}

TEST(ChromeExport, WriteToFileRoundTrips) {
  RegionRegistry registry;
  const RegionHandle fib = registry.register_region("fib", RegionType::kTask);
  const std::string path =
      "chrome_export_test_" + std::to_string(::getpid()) + ".json";
  trace::ChromeExportOptions file_options;
  file_options.registry = &registry;
  trace::write_chrome_trace(path, small_trace(fib), file_options);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), kGolden);
  std::remove(path.c_str());
}

TEST(ChromeExport, WriteToBadPathThrows) {
  RegionRegistry registry;
  const RegionHandle fib = registry.register_region("fib", RegionType::kTask);
  EXPECT_THROW(trace::write_chrome_trace("/nonexistent-dir/x/y.json",
                                         small_trace(fib), {&registry}),
               std::runtime_error);
}

TEST(ChromeExport, EmptyTraceRendersValidSkeleton) {
  const std::string doc = render_chrome_trace(Trace{});
  EXPECT_NE(doc.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(doc.find("\"ph\": \"B\""), std::string::npos);
}

}  // namespace
}  // namespace taskprof
