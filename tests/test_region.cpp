#include "profile/region.hpp"

#include <gtest/gtest.h>

namespace taskprof {
namespace {

TEST(RegionRegistry, RegistersAndLooksUp) {
  RegionRegistry registry;
  const RegionHandle h =
      registry.register_region("nqueens_task", RegionType::kTask);
  const RegionInfo& info = registry.info(h);
  EXPECT_EQ(info.name, "nqueens_task");
  EXPECT_EQ(info.type, RegionType::kTask);
}

TEST(RegionRegistry, DeduplicatesSameNameAndType) {
  RegionRegistry registry;
  const RegionHandle a = registry.register_region("foo", RegionType::kTask);
  const RegionHandle b = registry.register_region("foo", RegionType::kTask);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegionRegistry, SameNameDifferentTypeIsDistinct) {
  RegionRegistry registry;
  const RegionHandle a = registry.register_region("foo", RegionType::kTask);
  const RegionHandle b =
      registry.register_region("foo", RegionType::kFunction);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegionRegistry, FullInfoPreserved) {
  RegionRegistry registry;
  RegionInfo info;
  info.name = "bar";
  info.type = RegionType::kFunction;
  info.file = "bar.cpp";
  info.line = 42;
  const RegionHandle h = registry.register_region(info);
  EXPECT_EQ(registry.info(h).file, "bar.cpp");
  EXPECT_EQ(registry.info(h).line, 42);
}

TEST(RegionRegistry, HandlesAreDense) {
  RegionRegistry registry;
  const RegionHandle a = registry.register_region("a", RegionType::kTask);
  const RegionHandle b = registry.register_region("b", RegionType::kTask);
  const RegionHandle c = registry.register_region("c", RegionType::kTask);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
}

TEST(RegionType, SchedulingPointClassification) {
  EXPECT_TRUE(is_scheduling_point(RegionType::kTaskwait));
  EXPECT_TRUE(is_scheduling_point(RegionType::kBarrier));
  EXPECT_TRUE(is_scheduling_point(RegionType::kImplicitBarrier));
  EXPECT_TRUE(is_scheduling_point(RegionType::kTaskCreate));
  EXPECT_FALSE(is_scheduling_point(RegionType::kFunction));
  EXPECT_FALSE(is_scheduling_point(RegionType::kTask));
  EXPECT_FALSE(is_scheduling_point(RegionType::kImplicitTask));
  EXPECT_FALSE(is_scheduling_point(RegionType::kParallel));
}

TEST(RegionType, NamesAreHumanReadable) {
  EXPECT_EQ(region_type_name(RegionType::kTaskwait), "taskwait");
  EXPECT_EQ(region_type_name(RegionType::kTaskCreate), "create task");
  EXPECT_EQ(region_type_name(RegionType::kImplicitBarrier),
            "implicit barrier");
}

}  // namespace
}  // namespace taskprof
