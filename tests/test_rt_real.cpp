#include "rt/real_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "profile/region.hpp"
#include "test_util.hpp"

namespace taskprof {
namespace {

rt::TaskAttrs attrs_for(RegionHandle region) {
  rt::TaskAttrs attrs;
  attrs.region = region;
  return attrs;
}

class RealRuntimeTest : public ::testing::Test {
 protected:
  RegionRegistry registry_;
  RegionHandle task_ = registry_.register_region("t", RegionType::kTask);
  rt::RealRuntime runtime_;
};

TEST_F(RealRuntimeTest, RejectsNonPositiveThreadCount) {
  EXPECT_THROW(runtime_.parallel(0, [](rt::TaskContext&) {}),
               std::invalid_argument);
  EXPECT_THROW(runtime_.parallel(-3, [](rt::TaskContext&) {}),
               std::invalid_argument);
}

TEST_F(RealRuntimeTest, BodyRunsOncePerThread) {
  std::atomic<int> bodies{0};
  std::mutex mutex;
  std::set<ThreadId> threads;
  runtime_.parallel(4, [&](rt::TaskContext& ctx) {
    bodies.fetch_add(1);
    std::scoped_lock lock(mutex);
    threads.insert(ctx.thread_id());
    EXPECT_EQ(ctx.num_threads(), 4);
  });
  EXPECT_EQ(bodies.load(), 4);
  EXPECT_EQ(threads, (std::set<ThreadId>{0, 1, 2, 3}));
}

TEST_F(RealRuntimeTest, SingleClaimsExactlyOneThreadPerEncounter) {
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  runtime_.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) first.fetch_add(1);
    ctx.barrier();
    if (ctx.single()) second.fetch_add(1);
  });
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 1);
}

TEST_F(RealRuntimeTest, ImplicitBarrierDrainsAllTasks) {
  constexpr int kTasks = 200;
  std::atomic<int> executed{0};
  auto stats = runtime_.parallel(3, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < kTasks; ++i) {
      ctx.create_task([&executed](rt::TaskContext&) { executed.fetch_add(1); },
                      attrs_for(task_));
    }
  });
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_EQ(stats.tasks_executed, static_cast<std::uint64_t>(kTasks));
}

TEST_F(RealRuntimeTest, TaskwaitWaitsForDirectChildren) {
  std::atomic<int> children_done{0};
  bool observed_after_wait = false;
  runtime_.parallel(4, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    ctx.create_task(
        [&](rt::TaskContext& inner) {
          for (int i = 0; i < 10; ++i) {
            inner.create_task(
                [&children_done](rt::TaskContext&) {
                  children_done.fetch_add(1);
                },
                attrs_for(task_));
          }
          inner.taskwait();
          observed_after_wait = children_done.load() == 10;
        },
        attrs_for(task_));
    ctx.taskwait();
  });
  EXPECT_TRUE(observed_after_wait);
}

TEST_F(RealRuntimeTest, RecursiveTaskTreeComputesCorrectly) {
  std::function<void(rt::TaskContext&, int, long*)> fib =
      [&fib, this](rt::TaskContext& ctx, int n, long* out) {
        if (n < 2) {
          *out = n;
          return;
        }
        long a = 0;
        long b = 0;
        ctx.create_task([&fib, n, &a](rt::TaskContext& c) { fib(c, n - 1, &a); },
                        attrs_for(task_));
        ctx.create_task([&fib, n, &b](rt::TaskContext& c) { fib(c, n - 2, &b); },
                        attrs_for(task_));
        ctx.taskwait();
        *out = a + b;
      };
  long result = 0;
  runtime_.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) {
      fib(ctx, 15, &result);
    }
  });
  EXPECT_EQ(result, 610);
}

TEST_F(RealRuntimeTest, UndeferredTaskRunsInsideCreate) {
  bool ran_inline = false;
  runtime_.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    rt::TaskAttrs attrs = attrs_for(task_);
    attrs.undeferred = true;
    ctx.create_task([&ran_inline](rt::TaskContext&) { ran_inline = true; },
                    attrs);
    // Undeferred semantics: complete before create_task returns.
    EXPECT_TRUE(ran_inline);
  });
}

TEST_F(RealRuntimeTest, UndeferredTasksCanNestAndWait) {
  int value = 0;
  runtime_.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    rt::TaskAttrs undeferred = attrs_for(task_);
    undeferred.undeferred = true;
    ctx.create_task(
        [&value, this](rt::TaskContext& inner) {
          inner.create_task([&value](rt::TaskContext&) { value += 5; },
                            attrs_for(task_));
          inner.taskwait();
          value *= 2;
        },
        undeferred);
  });
  EXPECT_EQ(value, 10);
}

TEST_F(RealRuntimeTest, ExplicitBarrierSynchronizesPhases) {
  constexpr int kThreads = 4;
  std::atomic<int> phase1{0};
  std::atomic<bool> ordering_ok{true};
  runtime_.parallel(kThreads, [&](rt::TaskContext& ctx) {
    phase1.fetch_add(1);
    ctx.barrier();
    if (phase1.load() != kThreads) ordering_ok.store(false);
  });
  EXPECT_TRUE(ordering_ok.load());
}

TEST_F(RealRuntimeTest, TasksCanBeStolenByOtherThreads) {
  // The creator busy-waits outside any scheduling point, so only the
  // other thread (draining tasks at its implicit barrier) can run the
  // task: a guaranteed steal, deterministic even on a one-core host.
  std::atomic<bool> done{false};
  std::atomic<ThreadId> executor{99};
  auto stats = runtime_.parallel(2, [&](rt::TaskContext& ctx) {
    if (ctx.thread_id() != 0) return;
    ctx.create_task(
        [&](rt::TaskContext& inner) {
          executor.store(inner.thread_id());
          done.store(true);
        },
        attrs_for(task_));
    while (!done.load()) std::this_thread::yield();
  });
  EXPECT_EQ(executor.load(), 1u);
  EXPECT_EQ(stats.steals, 1u);
  EXPECT_EQ(stats.tasks_executed, 1u);
}

TEST_F(RealRuntimeTest, OversubscribedManyThreadsStillCompletes) {
  std::atomic<int> executed{0};
  runtime_.parallel(8, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 100; ++i) {
      ctx.create_task([&executed](rt::TaskContext&) { executed.fetch_add(1); },
                      attrs_for(task_));
    }
  });
  EXPECT_EQ(executed.load(), 100);
}

TEST_F(RealRuntimeTest, SequentialParallelRegionsAreIndependent) {
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> executed{0};
    runtime_.parallel(2, [&](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      for (int i = 0; i < 50; ++i) {
        ctx.create_task(
            [&executed](rt::TaskContext&) { executed.fetch_add(1); },
            attrs_for(task_));
      }
    });
    EXPECT_EQ(executed.load(), 50);
  }
}

TEST_F(RealRuntimeTest, HooksSeeBalancedEventsSingleThread) {
  testutil::RecordingHooks hooks;
  runtime_.set_hooks(&hooks);
  runtime_.parallel(1, [&](rt::TaskContext& ctx) {
    ctx.create_task([](rt::TaskContext& inner) { inner.taskwait(); },
                    attrs_for(task_));
    ctx.create_task([](rt::TaskContext&) {}, attrs_for(task_));
  });
  runtime_.set_hooks(nullptr);

  EXPECT_EQ(hooks.count("parallel_begin"), 1u);
  EXPECT_EQ(hooks.count("parallel_end"), 1u);
  EXPECT_EQ(hooks.count("implicit_begin"), 1u);
  EXPECT_EQ(hooks.count("implicit_end"), 1u);
  EXPECT_EQ(hooks.count("create_begin"), 2u);
  EXPECT_EQ(hooks.count("create_end"), 2u);
  EXPECT_EQ(hooks.count("task_begin"), 2u);
  EXPECT_EQ(hooks.count("task_end"), 2u);
  EXPECT_EQ(hooks.count("taskwait_begin"), hooks.count("taskwait_end"));
  EXPECT_EQ(hooks.count("ibarrier_begin"), 1u);
  EXPECT_EQ(hooks.count("ibarrier_end"), 1u);

  // Instance ids announced at creation match execution.
  std::set<TaskInstanceId> created;
  std::set<TaskInstanceId> begun;
  for (const auto& event : hooks.events()) {
    if (event.kind == "create_end") created.insert(event.id);
    if (event.kind == "task_begin") begun.insert(event.id);
  }
  EXPECT_EQ(created, begun);
  EXPECT_EQ(created.size(), 2u);
}

TEST_F(RealRuntimeTest, RegionEventsRouteToHooks) {
  testutil::RecordingHooks hooks;
  runtime_.set_hooks(&hooks);
  const RegionHandle foo =
      registry_.register_region("foo", RegionType::kFunction);
  runtime_.parallel(1, [&](rt::TaskContext& ctx) {
    rt::ScopedRegion region(ctx, foo);
    ctx.work(100);  // no-op on the real engine
  });
  runtime_.set_hooks(nullptr);
  EXPECT_EQ(hooks.count("region_enter"), 1u);
  EXPECT_EQ(hooks.count("region_exit"), 1u);
}

TEST_F(RealRuntimeTest, ParallelTicksArePositive) {
  auto stats = runtime_.parallel(2, [](rt::TaskContext&) {});
  EXPECT_GT(stats.parallel_ticks, 0);
  EXPECT_GT(runtime_.now(), 0);
}

}  // namespace
}  // namespace taskprof
