// Flush-cadence policy: FlushSchedule is a pure function of recorded
// outcomes (time-free, seeded), so every property is tested against a
// simulated clock — exact interval without jitter, exponential backoff
// capped at the configured exponent, reset on success, jitter bounds,
// and determinism per seed.  Plus the FlushSink plumbing: a counting
// fake sink driven through a real SnapshotFlusher observes ship() for
// data-bearing captures, heartbeat() for empty ones, and final=true
// exactly once from flush_final().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"
#include "snapshot/flusher.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::snapshot {
namespace {

constexpr Ticks kInterval = 1'000'000;  // 1ms base cadence

FlushScheduleOptions schedule_options(double jitter = 0.0) {
  FlushScheduleOptions options;
  options.interval = kInterval;
  options.jitter_fraction = jitter;
  options.backoff_multiplier = 2.0;
  options.max_backoff_exponent = 3;
  options.seed = 42;
  return options;
}

TEST(FlushSchedule, ExactIntervalWithoutJitter) {
  FlushSchedule schedule(schedule_options());
  for (int i = 0; i < 10; ++i) {
    schedule.record(FlushOutcome::kWritten);
    EXPECT_EQ(schedule.next_delay(), kInterval);
  }
}

TEST(FlushSchedule, FailuresBackOffExponentiallyAndCap) {
  FlushSchedule schedule(schedule_options());
  const std::vector<Ticks> expected = {
      kInterval * 2, kInterval * 4, kInterval * 8,  // 2^1, 2^2, 2^3
      kInterval * 8, kInterval * 8,                 // capped at 2^3
  };
  for (const Ticks want : expected) {
    schedule.record(FlushOutcome::kFailed);
    EXPECT_EQ(schedule.next_delay(), want)
        << "after " << schedule.consecutive_failures() << " failures";
  }
  // The counter itself saturates at the cap, so the exponent (and the
  // eventual recovery) stays bounded no matter how long the outage.
  EXPECT_EQ(schedule.consecutive_failures(), 3);
}

TEST(FlushSchedule, SuccessResetsTheBackoff) {
  FlushSchedule schedule(schedule_options());
  schedule.record(FlushOutcome::kFailed);
  schedule.record(FlushOutcome::kFailed);
  EXPECT_EQ(schedule.next_delay(), kInterval * 4);
  schedule.record(FlushOutcome::kWritten);
  EXPECT_EQ(schedule.consecutive_failures(), 0);
  EXPECT_EQ(schedule.next_delay(), kInterval);
}

TEST(FlushSchedule, SkipsAreNeutral) {
  FlushSchedule schedule(schedule_options());
  schedule.record(FlushOutcome::kFailed);
  const Ticks backed_off = schedule.next_delay();
  EXPECT_EQ(backed_off, kInterval * 2);
  // A benign skip (empty capture) neither deepens nor resets backoff.
  schedule.record(FlushOutcome::kSkipped);
  EXPECT_EQ(schedule.consecutive_failures(), 1);
  EXPECT_EQ(schedule.next_delay(), backed_off);
}

TEST(FlushSchedule, JitterStaysInBoundsAndActuallyJitters) {
  FlushSchedule schedule(schedule_options(/*jitter=*/0.25));
  const Ticks lo = kInterval - kInterval / 4;
  const Ticks hi = kInterval + kInterval / 4;
  Ticks min_seen = hi;
  Ticks max_seen = lo;
  for (int i = 0; i < 1000; ++i) {
    schedule.record(FlushOutcome::kWritten);
    const Ticks delay = schedule.next_delay();
    EXPECT_GE(delay, lo);
    EXPECT_LE(delay, hi);
    min_seen = std::min(min_seen, delay);
    max_seen = std::max(max_seen, delay);
  }
  // The fleet de-sync property: delays spread across the band instead
  // of clustering at the base interval.
  EXPECT_LT(min_seen, kInterval - kInterval / 8);
  EXPECT_GT(max_seen, kInterval + kInterval / 8);
}

TEST(FlushSchedule, DeterministicPerSeed) {
  FlushSchedule a(schedule_options(0.25));
  FlushSchedule b(schedule_options(0.25));
  for (int i = 0; i < 100; ++i) {
    a.record(FlushOutcome::kWritten);
    b.record(FlushOutcome::kWritten);
    EXPECT_EQ(a.next_delay(), b.next_delay()) << "step " << i;
  }
  FlushScheduleOptions other = schedule_options(0.25);
  other.seed = 43;
  FlushSchedule c(other);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    FlushSchedule fresh(schedule_options(0.25));
    c.record(FlushOutcome::kWritten);
    fresh.record(FlushOutcome::kWritten);
    if (c.next_delay() != fresh.next_delay()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(FlushSchedule, DegenerateOptionsAreClamped) {
  FlushScheduleOptions options;
  options.interval = 0;  // explicit-only flushing still yields a delay
  options.jitter_fraction = 9.0;     // clamped to [0, 1]
  options.backoff_multiplier = 0.1;  // clamped to >= 1 (never speeds up)
  options.max_backoff_exponent = -3; // clamped to >= 0
  FlushSchedule schedule(options);
  schedule.record(FlushOutcome::kFailed);
  EXPECT_GE(schedule.next_delay(), 1);  // never a zero/negative sleep
}

/// Simulated clock consuming a schedule: total virtual time for a
/// failure burst is base + backoff ramp, independent of wall time.
TEST(FlushSchedule, SimulatedClockRunsTheRampDeterministically) {
  FlushSchedule schedule(schedule_options());
  Ticks virtual_now = 0;
  const std::vector<FlushOutcome> script = {
      FlushOutcome::kWritten,  // + 1
      FlushOutcome::kFailed,   // + 2
      FlushOutcome::kFailed,   // + 4
      FlushOutcome::kWritten,  // + 1 (reset)
      FlushOutcome::kSkipped,  // + 1 (neutral)
  };
  for (const FlushOutcome outcome : script) {
    schedule.record(outcome);
    virtual_now += schedule.next_delay();
  }
  EXPECT_EQ(virtual_now, kInterval * (1 + 2 + 4 + 1 + 1));
}

// --- FlushSink plumbing through a real SnapshotFlusher ---------------------

/// Counting fake: records every ship()/heartbeat() and can be told to
/// fail, driving the kFailed path.
class FakeSink final : public FlushSink {
 public:
  bool ship(const AggregateProfile& profile, const RegionRegistry& registry,
            const SnapshotMeta& meta, const telemetry::Snapshot* telemetry,
            bool final) noexcept override {
    (void)registry;
    (void)telemetry;
    ++ships_;
    if (final) ++finals_;
    last_visits_ = profile.implicit_root != nullptr
                       ? profile.implicit_root->visits
                       : 0;
    last_flush_seq_ = meta.flush_seq;
    return !fail_;
  }
  bool heartbeat() noexcept override {
    ++heartbeats_;
    return true;
  }

  std::atomic<int> ships_{0};
  std::atomic<int> finals_{0};
  std::atomic<int> heartbeats_{0};
  std::atomic<bool> fail_{false};
  std::atomic<std::uint64_t> last_visits_{0};
  std::atomic<std::uint64_t> last_flush_seq_{0};
};

struct KernelFixture {
  RegionRegistry registry;
  rt::SimRuntime runtime;  ///< outlives the instrumentor's profilers
  std::unique_ptr<Instrumentor> instr;

  explicit KernelFixture(Ticks snapshot_every) {
    MeasureOptions moptions;
    moptions.snapshot_every = snapshot_every;
    instr = std::make_unique<Instrumentor>(registry, moptions);
    rt::FanoutHooks fanout({instr.get()});
    runtime.set_hooks(&fanout);
    auto kernel = bots::make_kernel("fib");
    bots::KernelConfig config;
    config.threads = 2;
    config.size = bots::SizeClass::kTest;
    const bots::KernelResult result =
        kernel->run(runtime, registry, config);
    EXPECT_TRUE(result.ok);
    runtime.set_hooks(nullptr);
  }
};

TEST(FlusherSink, StreamOnlyFlusherShipsCapturesWithoutAFile) {
  KernelFixture fixture(/*snapshot_every=*/10);
  FakeSink sink;
  FlusherOptions options;
  options.path = "";  // stream-only: no file ever written
  options.sink = &sink;
  SnapshotFlusher flusher(*fixture.instr, fixture.registry, options);
  EXPECT_TRUE(flusher.flush_now());
  EXPECT_EQ(sink.ships_.load(), 1);
  EXPECT_EQ(sink.finals_.load(), 0);
  EXPECT_GT(sink.last_visits_.load(), 0u);
  EXPECT_EQ(flusher.flush_count(), 1u);

  fixture.instr->finalize();
  EXPECT_TRUE(flusher.flush_final());
  EXPECT_EQ(sink.finals_.load(), 1);
  // After the final, periodic ticks are no-ops and never re-ship.
  EXPECT_FALSE(flusher.flush_now());
  EXPECT_EQ(sink.ships_.load(), 2);
}

TEST(FlusherSink, SinkFailureIsAFailedFlush) {
  KernelFixture fixture(10);
  FakeSink sink;
  sink.fail_ = true;
  FlusherOptions options;
  options.sink = &sink;
  SnapshotFlusher flusher(*fixture.instr, fixture.registry, options);
  EXPECT_FALSE(flusher.flush_now());
  EXPECT_EQ(flusher.flush_count(), 0u);
  EXPECT_EQ(sink.ships_.load(), 1);  // it was attempted
  sink.fail_ = false;
  EXPECT_TRUE(flusher.flush_now());
  EXPECT_EQ(flusher.flush_count(), 1u);
}

TEST(FlusherSink, EmptyCapturesHeartbeatInsteadOfShipping) {
  // snapshot_every=0 disables capture entirely: every tick is an empty
  // capture, which must heartbeat the sink, not ship garbage.
  KernelFixture fixture(/*snapshot_every=*/0);
  FakeSink sink;
  FlusherOptions options;
  options.sink = &sink;
  SnapshotFlusher flusher(*fixture.instr, fixture.registry, options);
  EXPECT_FALSE(flusher.flush_now());
  EXPECT_EQ(sink.ships_.load(), 0);
  EXPECT_GE(sink.heartbeats_.load(), 1);
}

TEST(FlusherSink, FileAndSinkTargetsBothReceiveTheCapture) {
  KernelFixture fixture(10);
  FakeSink sink;
  FlusherOptions options;
  options.path = testing::TempDir() + "flusher_sink.scratch.tpsnap";
  options.sink = &sink;
  SnapshotFlusher flusher(*fixture.instr, fixture.registry, options);
  EXPECT_TRUE(flusher.flush_now());
  EXPECT_EQ(sink.ships_.load(), 1);
  const SnapshotData from_file = read_snapshot_file(options.path);
  EXPECT_EQ(from_file.profile.implicit_root->visits,
            sink.last_visits_.load());
  std::remove(options.path.c_str());
}

TEST(FlusherSink, PeriodicThreadDrivesTheSink) {
  KernelFixture fixture(10);
  FakeSink sink;
  FlusherOptions options;
  options.sink = &sink;
  options.interval = 1'000'000;  // 1ms
  options.jitter_fraction = 0.2;
  SnapshotFlusher flusher(*fixture.instr, fixture.registry, options);
  flusher.start();
  // First flush is immediate; then the jittered cadence takes over.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sink.ships_.load() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  flusher.stop();
  EXPECT_GE(sink.ships_.load(), 3);
}

}  // namespace
}  // namespace taskprof::snapshot
