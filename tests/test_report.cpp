#include "report/text_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "instrument/instrumentor.hpp"
#include "report/cube_export.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() {
    task_ = registry_.register_region("work_task", RegionType::kTask);
    foo_ = registry_.register_region("foo", RegionType::kFunction);
    instr_ = std::make_unique<Instrumentor>(registry_);
    sim_.set_hooks(instr_.get());
    sim_.parallel(2, [this](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      for (int i = 0; i < 3; ++i) {
        ctx.create_task(
            [this](rt::TaskContext& c) {
              rt::ScopedRegion region(c, foo_);
              c.work(5'000);
            },
            [this] {
              rt::TaskAttrs attrs;
              attrs.region = task_;
              return attrs;
            }());
      }
      ctx.taskwait();
    });
    sim_.set_hooks(nullptr);
    instr_->finalize();
    profile_ = std::make_unique<AggregateProfile>(instr_->aggregate());
  }

  RegionRegistry registry_;
  RegionHandle task_{};
  RegionHandle foo_{};
  rt::SimRuntime sim_;
  std::unique_ptr<Instrumentor> instr_;
  std::unique_ptr<AggregateProfile> profile_;
};

TEST_F(ReportTest, TreeRenderingContainsRegionsAndMetrics) {
  const std::string out = render_tree(profile_->implicit_root, registry_);
  EXPECT_NE(out.find("implicit task"), std::string::npos);
  EXPECT_NE(out.find("parallel"), std::string::npos);
  EXPECT_NE(out.find("implicit barrier"), std::string::npos);
  EXPECT_NE(out.find("visits="), std::string::npos);
  EXPECT_NE(out.find("incl="), std::string::npos);
  EXPECT_NE(out.find("excl="), std::string::npos);
}

TEST_F(ReportTest, StubNodesAreMarked) {
  const std::string out = render_profile(*profile_, registry_);
  // The paper's Fig. 5 reading: a stub node for the task under the
  // scheduling point, marked distinctly.
  EXPECT_NE(out.find("work_task *"), std::string::npos);
}

TEST_F(ReportTest, ProfileRenderingListsTaskTreesBesideMainTree) {
  const std::string out = render_profile(*profile_, registry_);
  EXPECT_NE(out.find("=== main tree"), std::string::npos);
  EXPECT_NE(out.find("=== task tree: work_task ==="), std::string::npos);
  EXPECT_NE(out.find("=== summary ==="), std::string::npos);
  EXPECT_NE(out.find("max concurrent task instances"), std::string::npos);
  // The user region instrumented inside the task shows up in its tree.
  EXPECT_NE(out.find("foo"), std::string::npos);
}

TEST_F(ReportTest, EmptyTreeRenders) {
  EXPECT_EQ(render_tree(nullptr, registry_), "(empty tree)\n");
}

TEST_F(ReportTest, MaxDepthLimitsOutput) {
  ReportOptions options;
  options.max_depth = 0;
  const std::string out =
      render_tree(profile_->implicit_root, registry_, options);
  EXPECT_NE(out.find("implicit task"), std::string::npos);
  EXPECT_EQ(out.find("parallel"), std::string::npos);
}

TEST_F(ReportTest, CsvHasHeaderAndOneRowPerNode) {
  const std::string csv = render_csv(*profile_, registry_);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "tree,path,stub,parameter,visits,inclusive_ns,exclusive_ns,"
            "min_ns,mean_ns,max_ns");
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    if (!line.empty()) ++rows;
  }
  std::size_t nodes = subtree_size(profile_->implicit_root);
  for (const CallNode* root : profile_->task_roots) {
    nodes += subtree_size(root);
  }
  EXPECT_EQ(rows, nodes);
}

TEST_F(ReportTest, CsvPathsAreSlashJoined) {
  const std::string csv = render_csv(*profile_, registry_);
  EXPECT_NE(csv.find("main,implicit task/parallel/implicit barrier"),
            std::string::npos);
  EXPECT_NE(csv.find("task:work_task,work_task/foo"), std::string::npos);
}

TEST_F(ReportTest, CubeXmlIsWellFormedAndComplete) {
  const std::string xml = render_cube_xml(*profile_, registry_);
  EXPECT_EQ(xml.find("<?xml"), 0u);

  auto count = [&xml](const std::string& needle) {
    std::size_t n = 0;
    std::size_t pos = 0;
    while ((pos = xml.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  // Balanced tags.
  EXPECT_EQ(count("<cube "), count("</cube>"));
  EXPECT_EQ(count("<cnode "), count("</cnode>"));
  EXPECT_EQ(count("<metric "), count("</metric>"));
  EXPECT_EQ(count("<matrix "), count("</matrix>"));

  // One cnode per profile node, across all trees.
  std::size_t nodes = subtree_size(profile_->implicit_root);
  for (const CallNode* root : profile_->task_roots) {
    nodes += subtree_size(root);
  }
  EXPECT_EQ(count("<cnode "), nodes);
  // One severity row per (metric, cnode).
  EXPECT_EQ(count("<row "), nodes * 5);
  // Region names appear.
  EXPECT_NE(xml.find("<name>work_task</name>"), std::string::npos);
  EXPECT_NE(xml.find("<name>implicit barrier</name>"), std::string::npos);
  // Threads listed.
  EXPECT_NE(xml.find("<thread id=\"1\"/>"), std::string::npos);
}

TEST_F(ReportTest, CubeXmlEscapesSpecialCharacters) {
  RegionRegistry registry;
  const RegionHandle weird = registry.register_region(
      "a<b>&\"c\" task", RegionType::kTask);
  AggregateProfile profile;
  profile.implicit_root = profile.pool.allocate(
      registry.register_region("implicit task", RegionType::kImplicitTask),
      kNoParameter, false, nullptr);
  profile.pool.allocate(weird, kNoParameter, false, profile.implicit_root);
  profile.thread_count = 1;
  const std::string xml = render_cube_xml(profile, registry);
  EXPECT_NE(xml.find("a&lt;b&gt;&amp;&quot;c&quot; task"),
            std::string::npos);
  EXPECT_EQ(xml.find("<name>a<b>"), std::string::npos);
}

TEST_F(ReportTest, CsvStubColumnDistinguishesStubs) {
  const std::string csv = render_csv(*profile_, registry_);
  // Stub row: tree=main, path ends with work_task, stub flag 1.
  bool found_stub_row = false;
  std::istringstream is(csv);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("main,") == 0 && line.find("work_task,1,") !=
                                       std::string::npos) {
      found_stub_row = true;
    }
  }
  EXPECT_TRUE(found_stub_row);
}

}  // namespace
}  // namespace taskprof
