// Scheduler stress tests, run against BOTH queue implementations
// (RealConfig::scheduler): ~100k fine-grained tasks on an oversubscribed
// team, forced-steal totals, deep fire-and-forget chains that cycle the
// record slabs, sharded single episodes far beyond the shard count, and
// nested taskwait storms.  These are the tests the ThreadSanitizer preset
// (CMakePresets.json, `tsan`) exists for.
//
// Every body additionally runs under seeded schedule perturbation
// (rt::SchedulePolicy): injected yields, steal-before-pop inversions and
// rotated victim scans push the engine into orderings the unperturbed
// run rarely reaches.  A failure names the offending seed in its
// SCOPED_TRACE; re-running the test reproduces it (the seed list is
// fixed), and `fuzz_schedules` sweeps the same policy across many seeds.
#include "rt/real_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <thread>

#include "profile/region.hpp"
#include "rt/schedule_policy.hpp"

namespace taskprof {
namespace {

class RealStressTest : public ::testing::TestWithParam<rt::SchedulerKind> {
 protected:
  rt::RealConfig config() const {
    rt::RealConfig cfg;
    cfg.scheduler = GetParam();
    return cfg;
  }

  rt::TaskAttrs attrs() const {
    rt::TaskAttrs a;
    a.region = task_;
    return a;
  }

  /// Run `body` once unperturbed, then once per schedule seed.  Heavy
  /// bodies pass a single seed to bound ThreadSanitizer runtime.
  template <typename Body>
  void run_variants(std::initializer_list<std::uint64_t> seeds, Body&& body) {
    {
      SCOPED_TRACE("unperturbed schedule");
      rt::RealRuntime runtime(config());
      body(runtime);
    }
    for (const std::uint64_t seed : seeds) {
      SCOPED_TRACE(::testing::Message()
                   << "schedule seed 0x" << std::hex << seed
                   << " (deterministic seed list; re-run this test to "
                      "reproduce, or sweep more seeds with fuzz_schedules)");
      const rt::SchedulePolicy policy(seed);
      rt::RealConfig cfg = config();
      cfg.policy = &policy;
      rt::RealRuntime runtime(cfg);
      body(runtime);
    }
  }

  RegionRegistry registry_;
  RegionHandle task_ = registry_.register_region("t", RegionType::kTask);
};

TEST_P(RealStressTest, HundredThousandFineGrainedTasks) {
  constexpr std::uint64_t kTasks = 100000;
  run_variants({0xfee1deadULL}, [&](rt::RealRuntime& runtime) {
    std::atomic<std::uint64_t> sum{0};
    // 8 workers on this host is heavily oversubscribed — exactly the
    // preemption-under-contention regime the lock-free deque targets.
    const auto stats = runtime.parallel(8, [&](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      for (std::uint64_t i = 1; i <= kTasks; ++i) {
        ctx.create_task(
            [&sum, i](rt::TaskContext&) {
              sum.fetch_add(i, std::memory_order_relaxed);
            },
            attrs());
      }
    });
    EXPECT_EQ(stats.tasks_executed, kTasks);
    EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
  });
}

TEST_P(RealStressTest, EveryThreadProducingConcurrently) {
  constexpr std::uint64_t kPerThread = 10000;
  constexpr int kThreads = 8;
  run_variants({0xfee1deadULL, 0x0badf00dULL}, [&](rt::RealRuntime& runtime) {
    std::atomic<std::uint64_t> executed{0};
    const auto stats = runtime.parallel(kThreads, [&](rt::TaskContext& ctx) {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ctx.create_task(
            [&executed](rt::TaskContext&) {
              executed.fetch_add(1, std::memory_order_relaxed);
            },
            attrs());
      }
    });
    EXPECT_EQ(executed.load(), kPerThread * kThreads);
    EXPECT_EQ(stats.tasks_executed, kPerThread * kThreads);
  });
}

TEST_P(RealStressTest, StealTotalsExactWhenCreatorNeverSchedules) {
  // Thread 0 creates all tasks and busy-waits outside any scheduling
  // point, so every task MUST be executed by a thief: the steal counter
  // is deterministic even on an oversubscribed host — and under any
  // schedule seed, since perturbation biases who steals, never whether.
  constexpr std::uint64_t kTasks = 20000;
  run_variants({0xfee1deadULL, 0x0badf00dULL}, [&](rt::RealRuntime& runtime) {
    std::atomic<std::uint64_t> executed{0};
    const auto stats = runtime.parallel(4, [&](rt::TaskContext& ctx) {
      if (ctx.thread_id() != 0) return;  // thieves drain at the barrier
      for (std::uint64_t i = 0; i < kTasks; ++i) {
        ctx.create_task(
            [&executed](rt::TaskContext&) {
              executed.fetch_add(1, std::memory_order_relaxed);
            },
            attrs());
      }
      while (executed.load(std::memory_order_acquire) < kTasks) {
        std::this_thread::yield();
      }
    });
    EXPECT_EQ(stats.tasks_executed, kTasks);
    EXPECT_EQ(stats.steals, kTasks);
  });
}

TEST_P(RealStressTest, DeepFireAndForgetChainCyclesTheSlab) {
  // Each task spawns the next without waiting: a 50k-deep chain whose
  // records die and get recycled one by one — the slab free lists (local
  // and cross-thread) churn constantly.  No nesting, so thread stacks
  // stay flat.
  constexpr std::uint64_t kDepth = 50000;
  run_variants({0xfee1deadULL}, [&](rt::RealRuntime& runtime) {
    std::atomic<std::uint64_t> links{0};
    std::function<void(rt::TaskContext&)> link = [&](rt::TaskContext& ctx) {
      if (links.fetch_add(1, std::memory_order_relaxed) + 1 < kDepth) {
        ctx.create_task(link, attrs());
      }
    };
    const auto stats = runtime.parallel(4, [&](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      ctx.create_task(link, attrs());
    });
    EXPECT_EQ(links.load(), kDepth);
    EXPECT_EQ(stats.tasks_executed, kDepth);
  });
}

TEST_P(RealStressTest, RecursiveFibHasDeterministicTaskCount) {
  run_variants({0xfee1deadULL, 0x0badf00dULL}, [&](rt::RealRuntime& runtime) {
    std::function<void(rt::TaskContext&, int, long*)> fib =
        [&](rt::TaskContext& ctx, int n, long* out) {
          if (n < 2) {
            *out = n;
            return;
          }
          long a = 0;
          long b = 0;
          ctx.create_task(
              [&fib, n, &a](rt::TaskContext& c) { fib(c, n - 1, &a); },
              attrs());
          ctx.create_task(
              [&fib, n, &b](rt::TaskContext& c) { fib(c, n - 2, &b); },
              attrs());
          ctx.taskwait();
          *out = a + b;
        };
    long result = 0;
    const auto stats = runtime.parallel(8, [&](rt::TaskContext& ctx) {
      if (ctx.single()) fib(ctx, 18, &result);
    });
    EXPECT_EQ(result, 2584);
    // Task creations of cut-off-free fib(n): 2*fib(n+1) - 2.
    EXPECT_EQ(stats.tasks_executed, 2u * 4181 - 2);
  });
}

TEST_P(RealStressTest, ShardedSinglesClaimExactlyOncePerEpisode) {
  // Way more episodes than shard slots, with no barriers in between, so
  // threads drift across slot reuse boundaries — the scenario the
  // monotonic episode-claim protocol must survive.
  constexpr std::uint64_t kEpisodes = 20000;
  run_variants({0xfee1deadULL, 0x0badf00dULL}, [&](rt::RealRuntime& runtime) {
    std::atomic<std::uint64_t> claims{0};
    runtime.parallel(4, [&](rt::TaskContext& ctx) {
      for (std::uint64_t i = 0; i < kEpisodes; ++i) {
        if (ctx.single()) claims.fetch_add(1, std::memory_order_relaxed);
      }
    });
    EXPECT_EQ(claims.load(), kEpisodes);
  });
}

TEST_P(RealStressTest, BarrierGenerationsStayInLockstep) {
  constexpr int kPhases = 500;
  constexpr int kThreads = 4;
  run_variants({0xfee1deadULL, 0x0badf00dULL}, [&](rt::RealRuntime& runtime) {
    std::atomic<int> phase_arrivals{0};
    std::atomic<bool> ordered{true};
    runtime.parallel(kThreads, [&](rt::TaskContext& ctx) {
      for (int p = 0; p < kPhases; ++p) {
        phase_arrivals.fetch_add(1, std::memory_order_acq_rel);
        ctx.barrier();
        // After barrier p every thread has finished phase p.
        if (phase_arrivals.load(std::memory_order_acquire) <
            (p + 1) * kThreads) {
          ordered.store(false, std::memory_order_relaxed);
        }
      }
    });
    EXPECT_TRUE(ordered.load());
    EXPECT_EQ(phase_arrivals.load(), kPhases * kThreads);
  });
}

TEST_P(RealStressTest, NestedTaskwaitStorm) {
  constexpr int kRounds = 200;
  constexpr int kThreads = 4;
  constexpr int kChildren = 4;
  run_variants({0xfee1deadULL}, [&](rt::RealRuntime& runtime) {
    std::atomic<std::uint64_t> grandchildren{0};
    const auto stats = runtime.parallel(kThreads, [&](rt::TaskContext& ctx) {
      for (int r = 0; r < kRounds; ++r) {
        for (int c = 0; c < kChildren; ++c) {
          ctx.create_task(
              [&](rt::TaskContext& child) {
                for (int g = 0; g < kChildren; ++g) {
                  child.create_task(
                      [&grandchildren](rt::TaskContext&) {
                        grandchildren.fetch_add(1, std::memory_order_relaxed);
                      },
                      attrs());
                }
                child.taskwait();
              },
              attrs());
        }
        ctx.taskwait();
      }
    });
    const std::uint64_t kExpected =
        static_cast<std::uint64_t>(kThreads) * kRounds * kChildren *
        (1 + kChildren);
    EXPECT_EQ(grandchildren.load(),
              static_cast<std::uint64_t>(kThreads) * kRounds * kChildren *
                  kChildren);
    EXPECT_EQ(stats.tasks_executed, kExpected);
  });
}

TEST_P(RealStressTest, SequentialRegionsResetTeamState) {
  run_variants({0xfee1deadULL, 0x0badf00dULL}, [&](rt::RealRuntime& runtime) {
    for (int round = 0; round < 5; ++round) {
      std::atomic<std::uint64_t> executed{0};
      std::atomic<std::uint64_t> claims{0};
      const auto stats = runtime.parallel(3, [&](rt::TaskContext& ctx) {
        for (int i = 0; i < 100; ++i) {
          if (ctx.single()) claims.fetch_add(1, std::memory_order_relaxed);
        }
        ctx.barrier();
        if (!ctx.single()) return;
        for (int i = 0; i < 1000; ++i) {
          ctx.create_task(
              [&executed](rt::TaskContext&) {
                executed.fetch_add(1, std::memory_order_relaxed);
              },
              attrs());
        }
      });
      EXPECT_EQ(claims.load(), 100u) << "round " << round;
      EXPECT_EQ(executed.load(), 1000u) << "round " << round;
      EXPECT_EQ(stats.tasks_executed, 1000u) << "round " << round;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, RealStressTest,
    ::testing::Values(rt::SchedulerKind::kMutexDeque,
                      rt::SchedulerKind::kChaseLev),
    [](const ::testing::TestParamInfo<rt::SchedulerKind>& param) {
      return param.param == rt::SchedulerKind::kChaseLev ? "chase_lev"
                                                         : "mutex_deque";
    });

}  // namespace
}  // namespace taskprof
