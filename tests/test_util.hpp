// Shared test helpers: an event-recording hook listener.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "rt/hooks.hpp"

namespace taskprof::testutil {

/// Records every scheduler event (thread-safe; the real engine emits from
/// many threads).
class RecordingHooks final : public rt::SchedulerHooks {
 public:
  struct Event {
    std::string kind;
    ThreadId thread = 0;
    TaskInstanceId id = 0;
    RegionHandle region = kInvalidRegion;
  };

  void on_parallel_begin(int) override { add("parallel_begin", 0, 0); }
  void on_parallel_end() override { add("parallel_end", 0, 0); }
  void on_implicit_task_begin(ThreadId t, const Clock&) override {
    add("implicit_begin", t, 0);
  }
  void on_implicit_task_end(ThreadId t) override {
    add("implicit_end", t, 0);
  }
  void on_task_create_begin(ThreadId t, RegionHandle r,
                            std::int64_t) override {
    add("create_begin", t, 0, r);
  }
  void on_task_create_end(ThreadId t, TaskInstanceId id, RegionHandle r,
                          std::int64_t) override {
    add("create_end", t, id, r);
  }
  void on_task_begin(ThreadId t, TaskInstanceId id, RegionHandle r,
                     std::int64_t) override {
    add("task_begin", t, id, r);
  }
  void on_task_end(ThreadId t, TaskInstanceId id) override {
    add("task_end", t, id);
  }
  void on_task_switch(ThreadId t, TaskInstanceId id) override {
    add("task_switch", t, id);
  }
  void on_task_migrate(ThreadId from, ThreadId to,
                       TaskInstanceId id) override {
    add("migrate", from, id, static_cast<RegionHandle>(to));
  }
  void on_taskwait_begin(ThreadId t) override { add("taskwait_begin", t, 0); }
  void on_taskwait_end(ThreadId t) override { add("taskwait_end", t, 0); }
  void on_barrier_begin(ThreadId t, bool implicit) override {
    add(implicit ? "ibarrier_begin" : "barrier_begin", t, 0);
  }
  void on_barrier_end(ThreadId t, bool implicit) override {
    add(implicit ? "ibarrier_end" : "barrier_end", t, 0);
  }
  void on_region_enter(ThreadId t, RegionHandle r, std::int64_t) override {
    add("region_enter", t, 0, r);
  }
  void on_region_exit(ThreadId t, RegionHandle r) override {
    add("region_exit", t, 0, r);
  }

  std::vector<Event> events() const {
    std::scoped_lock lock(mutex_);
    return events_;
  }

  std::vector<Event> events_for(ThreadId thread) const {
    std::scoped_lock lock(mutex_);
    std::vector<Event> out;
    for (const Event& e : events_) {
      if (e.thread == thread) out.push_back(e);
    }
    return out;
  }

  std::size_t count(const std::string& kind) const {
    std::scoped_lock lock(mutex_);
    std::size_t n = 0;
    for (const Event& e : events_) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

 private:
  void add(std::string kind, ThreadId thread, TaskInstanceId id,
           RegionHandle region = kInvalidRegion) {
    std::scoped_lock lock(mutex_);
    events_.push_back(Event{std::move(kind), thread, id, region});
  }

  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

}  // namespace taskprof::testutil
