// Property tests for the what-if projection math: 200 seeded
// RandomTaskTree shapes (the same generator the schedule fuzzer sweeps)
// run on the deterministic sim engine, and every projection must satisfy
// the four invariants the profile header promises:
//
//   1. speedup ∈ [1, 1/(1 - share·N)] at every thread count;
//   2. speedup is monotone non-decreasing in N;
//   3. serial chains (fanout-1 trees on one thread) project exactly;
//   4. T_est'(P) ≥ max(T1'/P, T∞') — Brent's lemma, on the
//      overhead-augmented quantities the estimator actually uses.
//
// The sim is deterministic, so each (shape, seed) is a fixed program and
// these assertions are exact regressions, not statistical checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "check/random_tree.hpp"
#include "rt/sim_runtime.hpp"
#include "trace/analysis.hpp"
#include "trace/recorder.hpp"
#include "whatif/whatif.hpp"

namespace taskprof {
namespace {

constexpr int kSeedsPerShape = 40;
constexpr double kEps = 1e-6;

struct Built {
  RegionRegistry registry;
  trace::Trace trace;
  trace::TraceAnalysis analysis;
  whatif::WhatIfProfile profile;
  whatif::Error error;
};

std::unique_ptr<Built> build_random(std::uint64_t seed, int threads,
                                    const check::TreeShape& shape) {
  auto out = std::make_unique<Built>();
  const check::RandomTaskTree tree(out->registry, shape);
  rt::SimRuntime sim;
  trace::TraceRecorder recorder;
  sim.set_hooks(&recorder);
  tree.run(sim, seed, threads);
  sim.set_hooks(nullptr);
  out->trace = recorder.take();
  out->analysis = trace::analyze_trace(out->trace);
  out->error = whatif::WhatIfProfile::build(out->trace, out->analysis,
                                            out->registry, &out->profile);
  return out;
}

struct NamedShape {
  const char* name;
  check::TreeShape shape;
};

std::vector<NamedShape> property_shapes() {
  std::vector<NamedShape> shapes;
  shapes.push_back({"default", {}});
  check::TreeShape deep;
  deep.max_depth = 7;
  deep.max_fanout = 2;
  shapes.push_back({"deep_narrow", deep});
  check::TreeShape wide;
  wide.max_depth = 2;
  wide.max_fanout = 7;
  shapes.push_back({"flat_wide", wide});
  check::TreeShape untied;
  untied.untied_fraction = 0.9;
  untied.parameter_fraction = 0.6;
  shapes.push_back({"untied_params", untied});
  check::TreeShape no_wait;
  no_wait.taskwait_fraction = 0.0;
  shapes.push_back({"fire_and_forget", no_wait});
  return shapes;
}

/// Check invariants 1, 2, and 4 on one built profile's heaviest path.
void check_invariants(const Built& built) {
  const whatif::WhatIfProfile& profile = built.profile;
  std::vector<std::size_t> targets;
  ASSERT_TRUE(
      profile.resolve(profile.paths().front().name, &targets).ok());

  const std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  const std::vector<double> fractions = {0.25, 0.5, 0.75, 0.9};
  // The estimator's effective quantities, reconstructed from the public
  // accessors: overhead enters T1 whole; the spans already carry it per
  // chain task.
  const double overhead = static_cast<double>(profile.overhead());

  std::vector<std::vector<double>> speedups;  // [fraction][thread]
  for (const double fraction : fractions) {
    const whatif::Projection p =
        profile.project(targets, fraction, thread_counts);
    const double work_eff =
        static_cast<double>(p.work_after) + overhead;
    const double span_eff = static_cast<double>(p.span_after);

    std::vector<double> at;
    for (const whatif::ThreadProjection& tp : p.at_threads) {
      // Invariant 1: bounded by 1 below and the Amdahl ceiling above
      // (bound == 0 encodes "unbounded": share·N within rounding of 1).
      // The upper slack covers the tick-rounding of work_after/span_after
      // (±0.5 tick against ~100k-tick totals).
      EXPECT_GE(tp.speedup, 1.0 - kEps)
          << "N=" << fraction << " P=" << tp.threads;
      if (p.bound > 0.0) {
        EXPECT_LE(tp.speedup, p.bound * (1.0 + 1e-4))
            << "N=" << fraction << " P=" << tp.threads
            << " share=" << p.share;
      }
      // Invariant 4: Brent's lemma on the effective quantities.
      const double brent =
          std::max(work_eff / tp.threads, span_eff);
      EXPECT_GE(tp.time_after, brent * (1.0 - kEps))
          << "N=" << fraction << " P=" << tp.threads;
      at.push_back(tp.speedup);
    }
    speedups.push_back(std::move(at));
  }

  // Invariant 2: monotone non-decreasing in N at every thread count.
  for (std::size_t f = 1; f < speedups.size(); ++f) {
    ASSERT_EQ(speedups[f].size(), speedups[f - 1].size());
    for (std::size_t t = 0; t < speedups[f].size(); ++t) {
      EXPECT_GE(speedups[f][t], speedups[f - 1][t] * (1.0 - kEps))
          << "speedup dropped from N=" << fractions[f - 1] << " to N="
          << fractions[f] << " at thread slot " << t;
    }
  }
}

TEST(WhatIfProperty, InvariantsHoldOn200RandomShapes) {
  int checked = 0;
  for (const NamedShape& named : property_shapes()) {
    for (int i = 0; i < kSeedsPerShape; ++i) {
      const std::uint64_t seed = 1'000 + static_cast<std::uint64_t>(i);
      SCOPED_TRACE(::testing::Message()
                   << named.name << " seed " << seed);
      const auto built = build_random(seed, /*threads=*/4, named.shape);
      if (built->error.code == whatif::ErrorCode::kEmptyProfile) {
        // A seed may draw zero children everywhere; that trace has
        // nothing to project over and is correctly rejected.
        continue;
      }
      ASSERT_TRUE(built->error.ok()) << built->error.message;
      check_invariants(*built);
      ++checked;
    }
  }
  // The generator's zero-task draw is rare: the sweep must actually have
  // exercised (nearly) all 200 shapes.
  EXPECT_GE(checked, 190);
}

TEST(WhatIfProperty, SerialChainsProjectExactly) {
  // Invariant 3: on a gapless serial chain (hand-built trace: implicit
  // creates, taskwaits, the task runs — repeated) T1 == T∞, the
  // estimator is flat in P, and the projection is Amdahl's law exactly.
  for (const int tasks : {3, 17, 64}) {
    for (const Ticks duration : {400, 1'000}) {
      SCOPED_TRACE(::testing::Message()
                   << tasks << " tasks x " << duration << " ticks");
      RegionRegistry registry;
      const RegionHandle stage_a =
          registry.register_region("stage_a", RegionType::kTask);
      const RegionHandle stage_b =
          registry.register_region("stage_b", RegionType::kTask);
      std::vector<trace::TraceEvent> events;
      Ticks now = 0;
      events.push_back({now, 0, trace::EventKind::kImplicitBegin,
                        kImplicitTaskId, kInvalidRegion, kNoParameter, 0});
      for (int i = 0; i < tasks; ++i) {
        const TaskInstanceId id = static_cast<TaskInstanceId>(i + 1);
        const RegionHandle region = i % 2 == 0 ? stage_a : stage_b;
        events.push_back({now, 0, trace::EventKind::kCreateEnd, id,
                          region, kNoParameter, 0});
        events.push_back({now, 0, trace::EventKind::kTaskwaitBegin,
                          kImplicitTaskId, kInvalidRegion, kNoParameter,
                          0});
        events.push_back({now, 0, trace::EventKind::kTaskBegin, id,
                          region, kNoParameter, 0});
        now += duration;
        events.push_back({now, 0, trace::EventKind::kTaskEnd, id, region,
                          kNoParameter, 0});
        events.push_back({now, 0, trace::EventKind::kTaskwaitEnd,
                          kImplicitTaskId, kInvalidRegion, kNoParameter,
                          0});
      }
      events.push_back({now, 0, trace::EventKind::kImplicitEnd,
                        kImplicitTaskId, kInvalidRegion, kNoParameter, 0});
      const trace::Trace trace({std::move(events)});
      const trace::TraceAnalysis analysis = trace::analyze_trace(trace);
      whatif::WhatIfProfile profile;
      ASSERT_TRUE(whatif::WhatIfProfile::build(trace, analysis, registry,
                                               &profile)
                      .ok());
      ASSERT_EQ(profile.work(), profile.span());
      // Single-region target (share == ceil(n/2)/n) and the full program
      // (share == 1) must both hit the bound exactly.
      for (const char* target : {"stage_a", "stage_b"}) {
        std::vector<std::size_t> indices;
        ASSERT_TRUE(profile.resolve(target, &indices).ok());
        for (const double fraction : {0.25, 0.5, 0.75, 0.9}) {
          const whatif::Projection p =
              profile.project(indices, fraction, {1, 2, 4, 16});
          ASSERT_GT(p.bound, 0.0);
          for (const whatif::ThreadProjection& tp : p.at_threads) {
            EXPECT_NEAR(tp.speedup, p.bound, p.bound * 1e-9)
                << target << " N=" << fraction << " P=" << tp.threads;
          }
        }
      }
    }
  }
}

TEST(WhatIfProperty, ProjectionIsDeterministic) {
  // Same seed, two fresh runs: byte-identical inputs to the projector,
  // so identical projections — the property the corpus goldens pin.
  const check::TreeShape shape;
  const auto a = build_random(42, 4, shape);
  const auto b = build_random(42, 4, shape);
  ASSERT_TRUE(a->error.ok());
  ASSERT_TRUE(b->error.ok());
  EXPECT_EQ(a->profile.work(), b->profile.work());
  EXPECT_EQ(a->profile.span(), b->profile.span());
  EXPECT_EQ(a->profile.span_length(), b->profile.span_length());
  std::vector<std::size_t> ta;
  std::vector<std::size_t> tb;
  ASSERT_TRUE(a->profile.resolve(a->profile.paths().front().name, &ta).ok());
  ASSERT_TRUE(b->profile.resolve(b->profile.paths().front().name, &tb).ok());
  const whatif::Projection pa = a->profile.project(ta, 0.5, {2, 8});
  const whatif::Projection pb = b->profile.project(tb, 0.5, {2, 8});
  EXPECT_EQ(pa.span_after, pb.span_after);
  ASSERT_EQ(pa.at_threads.size(), pb.at_threads.size());
  for (std::size_t i = 0; i < pa.at_threads.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.at_threads[i].speedup, pb.at_threads[i].speedup);
  }
}

}  // namespace
}  // namespace taskprof
