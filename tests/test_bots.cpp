// Correctness of the nine BOTS kernels on both engines, parameterized
// over kernel, engine, thread count, and version.
#include "bots/kernel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "instrument/instrumentor.hpp"
#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

struct Case {
  std::string kernel;
  std::string engine;  // "sim" or "real"
  int threads;
  bool cutoff;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return c.kernel + "_" + c.engine + "_t" + std::to_string(c.threads) +
         (c.cutoff ? "_cutoff" : "");
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  auto kernels = bots::make_all_kernels();
  for (const auto& kernel : kernels) {
    const std::string name(kernel->name());
    for (const std::string& engine : {std::string("sim"), std::string("real")}) {
      for (int threads : {1, 4}) {
        cases.push_back({name, engine, threads, false});
        if (kernel->has_cutoff_version()) {
          cases.push_back({name, engine, threads, true});
        }
      }
    }
  }
  return cases;
}

class BotsKernelTest : public ::testing::TestWithParam<Case> {};

TEST_P(BotsKernelTest, SelfVerifies) {
  const Case& c = GetParam();
  auto kernel = bots::make_kernel(c.kernel);
  ASSERT_NE(kernel, nullptr);
  bots::KernelConfig config;
  config.threads = c.threads;
  config.size = bots::SizeClass::kTest;
  config.cutoff = c.cutoff;

  RegionRegistry registry;
  std::unique_ptr<rt::Runtime> runtime;
  if (c.engine == "sim") {
    runtime = std::make_unique<rt::SimRuntime>();
  } else {
    runtime = std::make_unique<rt::RealRuntime>();
  }
  const bots::KernelResult result = kernel->run(*runtime, registry, config);
  EXPECT_TRUE(result.ok) << result.check;
  EXPECT_GT(result.stats.tasks_executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, BotsKernelTest,
                         ::testing::ValuesIn(all_cases()), case_name);

// --- Cross-engine and cross-version agreement -------------------------------

class BotsAgreementTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BotsAgreementTest, SimAndRealProduceTheSameChecksum) {
  auto kernel = bots::make_kernel(GetParam());
  ASSERT_NE(kernel, nullptr);
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;

  RegionRegistry registry;
  rt::SimRuntime sim;
  rt::RealRuntime real;
  const auto sim_result = kernel->run(sim, registry, config);
  const auto real_result = kernel->run(real, registry, config);
  EXPECT_EQ(sim_result.checksum, real_result.checksum);
}

TEST_P(BotsAgreementTest, CutoffVersionComputesTheSameResult) {
  auto kernel = bots::make_kernel(GetParam());
  ASSERT_NE(kernel, nullptr);
  if (!kernel->has_cutoff_version()) GTEST_SKIP();
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;

  RegionRegistry registry;
  rt::SimRuntime sim;
  const auto plain = kernel->run(sim, registry, config);
  config.cutoff = true;
  const auto cutoff = kernel->run(sim, registry, config);
  EXPECT_EQ(plain.checksum, cutoff.checksum);
  // The cut-off version must actually reduce the task count.
  EXPECT_LT(cutoff.stats.tasks_executed, plain.stats.tasks_executed);
}

TEST_P(BotsAgreementTest, IfClauseCutoffComputesTheSameResult) {
  auto kernel = bots::make_kernel(GetParam());
  ASSERT_NE(kernel, nullptr);
  if (!kernel->has_cutoff_version()) GTEST_SKIP();
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;

  RegionRegistry registry;
  rt::SimRuntime sim;
  const auto plain = kernel->run(sim, registry, config);
  config.cutoff = true;
  config.if_clause = true;
  const auto if_clause = kernel->run(sim, registry, config);
  EXPECT_EQ(plain.checksum, if_clause.checksum);
  // The if-clause strategy still *creates* every task (undeferred below
  // the cut-off), unlike the manual strategy.
  config.if_clause = false;
  const auto manual = kernel->run(sim, registry, config);
  EXPECT_GT(if_clause.stats.tasks_executed, manual.stats.tasks_executed);
}

TEST_P(BotsAgreementTest, IfClauseCutoffWorksOnRealEngine) {
  auto kernel = bots::make_kernel(GetParam());
  ASSERT_NE(kernel, nullptr);
  if (!kernel->has_cutoff_version()) GTEST_SKIP();
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;
  config.cutoff = true;
  config.if_clause = true;
  RegionRegistry registry;
  rt::RealRuntime real;
  const auto result = kernel->run(real, registry, config);
  EXPECT_TRUE(result.ok) << result.check;
}

TEST_P(BotsAgreementTest, SimRunsAreDeterministic) {
  auto kernel = bots::make_kernel(GetParam());
  ASSERT_NE(kernel, nullptr);
  bots::KernelConfig config;
  config.threads = 4;
  config.size = bots::SizeClass::kTest;

  RegionRegistry registry;
  rt::SimRuntime sim_a;
  rt::SimRuntime sim_b;
  const auto a = kernel->run(sim_a, registry, config);
  const auto b = kernel->run(sim_b, registry, config);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.stats.parallel_ticks, b.stats.parallel_ticks);
  EXPECT_EQ(a.stats.tasks_executed, b.stats.tasks_executed);
}

INSTANTIATE_TEST_SUITE_P(
    Agreement, BotsAgreementTest,
    ::testing::Values("fib", "nqueens", "sort", "strassen", "sparselu",
                      "health", "alignment", "fft"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

// Floorplan's task count varies with scheduling (branch-and-bound pruning
// races), so it is excluded from the determinism suite above but must
// still find the optimum under instrumentation.
TEST(BotsFloorplan, FindsOptimumUnderInstrumentation) {
  auto kernel = bots::make_kernel("floorplan");
  bots::KernelConfig config;
  config.threads = 4;
  config.size = bots::SizeClass::kTest;
  RegionRegistry registry;
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  const auto result = kernel->run(sim, registry, config);
  sim.set_hooks(nullptr);
  instr.finalize();
  EXPECT_TRUE(result.ok) << result.check;
}

// --- Profiling metadata ------------------------------------------------------

TEST(BotsProfiles, NqueensDepthParameterSplitsSubTrees) {
  auto kernel = bots::make_kernel("nqueens");
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;
  config.depth_parameter = true;

  RegionRegistry registry;
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  const auto result = kernel->run(sim, registry, config);
  sim.set_hooks(nullptr);
  instr.finalize();
  EXPECT_TRUE(result.ok);

  const AggregateProfile agg = instr.aggregate();
  // One merged sub-tree per recursion depth (paper Table IV): nqueens(8)
  // has depth levels 0..8.
  std::size_t depth_trees = 0;
  for (const CallNode* root : agg.task_roots) {
    if (root->parameter != kNoParameter) ++depth_trees;
  }
  EXPECT_GE(depth_trees, 8u);
}

TEST(BotsProfiles, UntiedVariantRunsCorrectly) {
  for (const char* name : {"fib", "sort"}) {
    auto kernel = bots::make_kernel(name);
    bots::KernelConfig config;
    config.threads = 4;
    config.size = bots::SizeClass::kTest;
    config.untied = true;
    RegionRegistry registry;
    rt::SimRuntime sim;
    const auto result = kernel->run(sim, registry, config);
    EXPECT_TRUE(result.ok) << name << ": " << result.check;
  }
}

TEST(BotsProfiles, InstrumentedRunsMatchUninstrumentedChecksums) {
  for (const char* name : {"fib", "nqueens", "health"}) {
    auto kernel = bots::make_kernel(name);
    bots::KernelConfig config;
    config.threads = 2;
    config.size = bots::SizeClass::kTest;
    RegionRegistry registry;
    rt::SimRuntime sim;
    const auto plain = kernel->run(sim, registry, config);
    Instrumentor instr(registry);
    sim.set_hooks(&instr);
    const auto instrumented = kernel->run(sim, registry, config);
    sim.set_hooks(nullptr);
    instr.finalize();
    EXPECT_EQ(plain.checksum, instrumented.checksum) << name;
    // Instrumentation costs virtual time.
    EXPECT_GT(instrumented.stats.parallel_ticks, plain.stats.parallel_ticks)
        << name;
  }
}

}  // namespace
}  // namespace taskprof
