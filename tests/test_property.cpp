// Property-based tests: random task programs on the simulator must
// satisfy the measurement-layer invariants for every seed.  The program
// generators live in src/check/random_tree.hpp — the same generators the
// schedule fuzzer (fuzz_schedules) sweeps — and the structural laws are
// asserted both directly and through check::check_profile, so a new
// invariant added to the checker is automatically enforced here too.
#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "check/random_tree.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

struct RunOutcome {
  rt::TeamStats stats;
  Ticks stub_total = 0;
  Ticks task_tree_total = 0;
  std::uint64_t merged_instances = 0;
  bool all_exclusive_nonnegative = true;
  Ticks implicit_inclusive = 0;
  std::size_t max_concurrent = 0;
  check::InvariantReport report;
};

RunOutcome run_random_program(rt::Runtime& runtime, std::uint64_t seed,
                              int threads, check::TreeShape shape = {},
                              int roots = 6) {
  RegionRegistry registry;
  const check::RandomTaskTree tree(registry, shape);
  Instrumentor instr(registry);
  runtime.set_hooks(&instr);
  RunOutcome out;
  out.stats = tree.run(runtime, seed, threads, roots);
  runtime.set_hooks(nullptr);
  instr.finalize();

  const AggregateProfile agg = instr.aggregate();
  out.report = check::check_profile(agg, registry, &out.stats);
  for_each_node(agg.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) out.stub_total += node.inclusive;
    if (node.exclusive() < 0) out.all_exclusive_nonnegative = false;
  });
  for (const CallNode* root : agg.task_roots) {
    out.task_tree_total += root->inclusive;
    out.merged_instances += root->visits;
    for_each_node(root, [&](const CallNode& node, int) {
      if (node.exclusive() < 0) out.all_exclusive_nonnegative = false;
    });
  }
  out.implicit_inclusive = agg.implicit_root->inclusive;
  out.max_concurrent = agg.max_concurrent_any_thread;
  return out;
}

class RandomProgramTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RandomProgramTest, MeasurementInvariantsHold) {
  const auto [seed, threads] = GetParam();
  rt::SimRuntime sim;
  const RunOutcome out = run_random_program(sim, seed, threads);

  // Some work actually happened.
  EXPECT_GT(out.stats.tasks_executed, 0u);

  // The full structural checker agrees.
  EXPECT_TRUE(out.report.ok()) << out.report.to_string();

  // Conservation: every executed fragment is timed identically in the
  // implicit tree's stub and in the instance tree.
  EXPECT_EQ(out.stub_total, out.task_tree_total);

  // Execution-site attribution keeps all exclusive times non-negative.
  EXPECT_TRUE(out.all_exclusive_nonnegative);

  // Every created task instance ended up in exactly one merged tree.
  EXPECT_EQ(out.merged_instances, out.stats.tasks_executed);

  // The merged implicit root spans all threads: at least the region span,
  // at most threads * span.
  EXPECT_GE(out.implicit_inclusive, out.stats.parallel_ticks);
  EXPECT_LE(out.implicit_inclusive,
            static_cast<Ticks>(threads) * out.stats.parallel_ticks);

  // Concurrent instances are bounded by active tree depth plus the
  // suspended untied tasks — sanity bound, not tight.
  EXPECT_LE(out.max_concurrent, out.stats.tasks_executed);
  EXPECT_GE(out.max_concurrent, 1u);
}

TEST_P(RandomProgramTest, DeterministicAcrossRuns) {
  const auto [seed, threads] = GetParam();
  rt::SimRuntime sim_a;
  rt::SimRuntime sim_b;
  const RunOutcome a = run_random_program(sim_a, seed, threads);
  const RunOutcome b = run_random_program(sim_b, seed, threads);
  EXPECT_EQ(a.stats.parallel_ticks, b.stats.parallel_ticks);
  EXPECT_EQ(a.stats.tasks_executed, b.stats.tasks_executed);
  EXPECT_EQ(a.stub_total, b.stub_total);
  EXPECT_EQ(a.implicit_inclusive, b.implicit_inclusive);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomProgramTest,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull,
                                         21ull, 34ull, 55ull, 89ull),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>&
           param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_t" +
             std::to_string(std::get<1>(param_info.param));
    });

// Sweep the generator's shape knobs: deep and narrow, flat and wide,
// untied-heavy, undeferred mix, and fire-and-forget (no taskwait).  The
// structural laws must hold for every shape the fuzzer can draw.
struct ShapeCase {
  const char* name;
  check::TreeShape shape;
};

std::vector<ShapeCase> shape_cases() {
  std::vector<ShapeCase> cases;
  check::TreeShape deep;
  deep.max_depth = 8;
  deep.max_fanout = 2;
  cases.push_back({"deep_narrow", deep});
  check::TreeShape wide;
  wide.max_depth = 2;
  wide.max_fanout = 8;
  cases.push_back({"flat_wide", wide});
  check::TreeShape untied;
  untied.untied_fraction = 0.9;
  cases.push_back({"untied_heavy", untied});
  check::TreeShape undeferred;
  undeferred.undeferred_fraction = 0.5;
  cases.push_back({"undeferred_mix", undeferred});
  check::TreeShape no_wait;
  no_wait.taskwait_fraction = 0.0;
  cases.push_back({"fire_and_forget", no_wait});
  return cases;
}

class ShapeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShapeSweep, InvariantsHoldForAnyShape) {
  const ShapeCase shape_case = shape_cases()[GetParam()];
  for (std::uint64_t seed : {3ull, 17ull}) {
    SCOPED_TRACE(::testing::Message()
                 << shape_case.name << " seed " << seed);
    rt::SimRuntime sim;
    const RunOutcome out =
        run_random_program(sim, seed, 4, shape_case.shape);
    EXPECT_TRUE(out.report.ok()) << out.report.to_string();
    EXPECT_EQ(out.stub_total, out.task_tree_total);
    EXPECT_EQ(out.merged_instances, out.stats.tasks_executed);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Range<std::size_t>(0, 5),
                         [](const ::testing::TestParamInfo<std::size_t>& p) {
                           return shape_cases()[p.param].name;
                         });

// The same invariants on the real-thread engine (timing is wall clock,
// but the structural laws are engine-independent).
class RealEngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RealEngineProperty, StructuralInvariantsHold) {
  check::TreeShape shape;
  shape.max_depth = 3;
  rt::RealRuntime real;
  const RunOutcome out =
      run_random_program(real, GetParam(), 2, shape, /*roots=*/4);
  EXPECT_TRUE(out.report.ok()) << out.report.to_string();
  EXPECT_TRUE(out.all_exclusive_nonnegative);
  // The conservation law holds tick-exactly on the real engine too: stub
  // and instance frames are stamped from the same clock reads.
  EXPECT_EQ(out.stub_total, out.task_tree_total);
  EXPECT_EQ(out.merged_instances, out.stats.tasks_executed);
}

INSTANTIATE_TEST_SUITE_P(RealSeeds, RealEngineProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

// The measurement invariants must hold for any cost-model configuration:
// sweep the simulator's knobs over a uniform binary tree (depth 6 -> 126
// tasks).
struct CostCase {
  const char* name;
  rt::SimCosts costs;
  bool lifo;
  bool strict;
};

std::vector<CostCase> cost_cases() {
  std::vector<CostCase> cases;
  cases.push_back({"defaults", rt::SimCosts{}, true, true});
  rt::SimCosts free_mgmt;
  free_mgmt.create_service = 0;
  free_mgmt.dequeue_service = 0;
  free_mgmt.complete_service = 0;
  free_mgmt.contention_penalty = 0.0;
  cases.push_back({"free_management", free_mgmt, true, true});
  rt::SimCosts expensive;
  expensive.create_service = 5'000;
  expensive.dequeue_service = 5'000;
  expensive.complete_service = 5'000;
  expensive.contention_penalty = 2.0;
  cases.push_back({"expensive_lock", expensive, true, true});
  rt::SimCosts costly_events;
  costly_events.instr_event = 2'000;
  cases.push_back({"costly_events", costly_events, true, true});
  cases.push_back({"fifo_relaxed", rt::SimCosts{}, false, false});
  return cases;
}

class CostModelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CostModelSweep, InvariantsHoldForAnyCostModel) {
  const CostCase cost_case = cost_cases()[GetParam()];
  RegionRegistry registry;
  const check::UniformTree tree(registry, /*work=*/400);
  rt::SimConfig config;
  config.costs = cost_case.costs;
  config.lifo_dequeue = cost_case.lifo;
  config.strict_taskwait_scheduling = cost_case.strict;
  rt::SimRuntime sim(config);
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  const auto stats = sim.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) tree.body(ctx, /*depth=*/6, /*fanout=*/2);
  });
  sim.set_hooks(nullptr);
  instr.finalize();

  const AggregateProfile agg = instr.aggregate();
  EXPECT_EQ(stats.tasks_executed, check::UniformTree::task_count(6, 2))
      << cost_case.name;
  EXPECT_EQ(stats.tasks_executed, 126u) << cost_case.name;
  Ticks stub_total = 0;
  for_each_node(agg.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) stub_total += node.inclusive;
    EXPECT_GE(node.exclusive(), 0) << cost_case.name;
  });
  Ticks task_total = 0;
  for (const CallNode* root : agg.task_roots) task_total += root->inclusive;
  EXPECT_EQ(stub_total, task_total) << cost_case.name;
  // All declared work (126 tasks x 400 plus creators' shares) is inside
  // the task trees.
  EXPECT_GE(task_total, 126 * 400) << cost_case.name;
  const check::InvariantReport report =
      check::check_profile(agg, registry, &stats);
  EXPECT_TRUE(report.ok()) << cost_case.name << "\n" << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Models, CostModelSweep,
                         ::testing::Range<std::size_t>(0, 5));

TEST(SchedulingBound, StrictPolicyBoundsConcurrencyByDepth) {
  // Binary task tree of depth 8: under strict scheduling the live
  // instance count per thread stays within the chain depth (+1 for the
  // freshly started task), for every team size.
  RegionRegistry registry;
  const check::UniformTree tree(registry, /*work=*/300);
  for (int threads : {1, 2, 4, 8, 16}) {
    rt::SimRuntime sim;
    Instrumentor instr(registry);
    sim.set_hooks(&instr);
    sim.parallel(threads, [&](rt::TaskContext& ctx) {
      if (ctx.single()) tree.body(ctx, /*depth=*/8, /*fanout=*/2);
    });
    sim.set_hooks(nullptr);
    instr.finalize();
    const AggregateProfile agg = instr.aggregate();
    EXPECT_LE(agg.max_concurrent_any_thread, 9u) << threads << " threads";
  }
}

TEST(RandomProgramEdge, ZeroTaskProgramStillProfiles) {
  RegionRegistry registry;
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  auto stats = sim.parallel(4, [](rt::TaskContext& ctx) { ctx.work(1'000); });
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_TRUE(agg.task_roots.empty());
  ASSERT_NE(agg.implicit_root, nullptr);
  EXPECT_GE(agg.implicit_root->inclusive, 4'000);
}

TEST(RandomProgramEdge, DeepChainOfSingleChildren) {
  // A fanout-1 uniform tree is a 61-deep dependency chain: each task
  // spawns one child and waits for it.
  RegionRegistry registry;
  const check::UniformTree tree(registry, /*work=*/50);
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  auto stats = sim.parallel(2, [&](rt::TaskContext& ctx) {
    if (ctx.single()) tree.body(ctx, /*depth=*/61, /*fanout=*/1);
  });
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();
  EXPECT_EQ(stats.tasks_executed, check::UniformTree::task_count(61, 1));
  EXPECT_EQ(stats.tasks_executed, 61u);
  // The dependency chain forces ~chain-depth concurrent instances
  // (paper §V-B: "the longest dependency chain ... may serve as a good
  // estimate for the number of concurrent tasks").
  EXPECT_GE(agg.max_concurrent_any_thread, 30u);
}

}  // namespace
}  // namespace taskprof
