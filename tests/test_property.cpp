// Property-based tests: random task programs on the simulator must
// satisfy the measurement-layer invariants for every seed.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

/// Deterministic random task program: a tree of tasks with random
/// branching, work, taskwait placement, tied/untied mix, and parameters.
/// The RNG decisions are a pure function of the node's path seed, so the
/// program shape is independent of scheduling.
struct RandomProgram {
  RegionHandle region_a;
  RegionHandle region_b;
  RegionHandle user_region;
  int max_depth;

  void spawn(rt::TaskContext& ctx, std::uint64_t path_seed, int depth) const {
    Xoshiro256 rng(path_seed);
    const int children =
        depth >= max_depth ? 0 : static_cast<int>(rng.next_below(4));
    const bool untied = rng.next_double() < 0.3;
    const bool use_b = rng.next_double() < 0.4;
    const bool parameterized = rng.next_double() < 0.3;
    const Ticks work = 100 + static_cast<Ticks>(rng.next_below(5'000));
    const bool enter_user = rng.next_double() < 0.5;

    rt::TaskAttrs attrs;
    attrs.region = use_b ? region_b : region_a;
    attrs.parameter = parameterized ? depth : kNoParameter;
    attrs.binding =
        untied ? rt::TaskBinding::kUntied : rt::TaskBinding::kTied;

    ctx.create_task(
        [this, path_seed, depth, children, work, enter_user](
            rt::TaskContext& c) {
          if (enter_user) c.region_enter(user_region);
          c.work(work);
          for (int i = 0; i < children; ++i) {
            spawn(c, path_seed * 31 + static_cast<std::uint64_t>(i) + 1,
                  depth + 1);
          }
          if (children > 0) c.taskwait();
          c.work(work / 2);
          if (enter_user) c.region_exit(user_region);
        },
        attrs);
  }
};

struct RunOutcome {
  rt::TeamStats stats;
  Ticks stub_total = 0;
  Ticks task_tree_total = 0;
  std::uint64_t merged_instances = 0;
  bool all_exclusive_nonnegative = true;
  Ticks implicit_inclusive = 0;
  std::size_t max_concurrent = 0;
};

RunOutcome run_random_program(std::uint64_t seed, int threads) {
  RegionRegistry registry;
  RandomProgram program{
      registry.register_region("rand_task_a", RegionType::kTask),
      registry.register_region("rand_task_b", RegionType::kTask),
      registry.register_region("user_fn", RegionType::kFunction),
      /*max_depth=*/4,
  };
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  RunOutcome out;
  out.stats = sim.parallel(threads, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 6; ++i) {
      program.spawn(ctx, seed * 1000 + static_cast<std::uint64_t>(i), 0);
    }
    ctx.taskwait();
  });
  sim.set_hooks(nullptr);
  instr.finalize();

  const AggregateProfile agg = instr.aggregate();
  for_each_node(agg.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) out.stub_total += node.inclusive;
    if (node.exclusive() < 0) out.all_exclusive_nonnegative = false;
  });
  for (const CallNode* root : agg.task_roots) {
    out.task_tree_total += root->inclusive;
    out.merged_instances += root->visits;
    for_each_node(root, [&](const CallNode& node, int) {
      if (node.exclusive() < 0) out.all_exclusive_nonnegative = false;
    });
  }
  out.implicit_inclusive = agg.implicit_root->inclusive;
  out.max_concurrent = agg.max_concurrent_any_thread;
  return out;
}

class RandomProgramTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RandomProgramTest, MeasurementInvariantsHold) {
  const auto [seed, threads] = GetParam();
  const RunOutcome out = run_random_program(seed, threads);

  // Some work actually happened.
  EXPECT_GT(out.stats.tasks_executed, 0u);

  // Conservation: every executed fragment is timed identically in the
  // implicit tree's stub and in the instance tree.
  EXPECT_EQ(out.stub_total, out.task_tree_total);

  // Execution-site attribution keeps all exclusive times non-negative.
  EXPECT_TRUE(out.all_exclusive_nonnegative);

  // Every created task instance ended up in exactly one merged tree.
  EXPECT_EQ(out.merged_instances, out.stats.tasks_executed);

  // The merged implicit root spans all threads: at least the region span,
  // at most threads * span.
  EXPECT_GE(out.implicit_inclusive, out.stats.parallel_ticks);
  EXPECT_LE(out.implicit_inclusive,
            static_cast<Ticks>(threads) * out.stats.parallel_ticks);

  // Concurrent instances are bounded by active tree depth plus the
  // suspended untied tasks — sanity bound, not tight.
  EXPECT_LE(out.max_concurrent, out.stats.tasks_executed);
  EXPECT_GE(out.max_concurrent, 1u);
}

TEST_P(RandomProgramTest, DeterministicAcrossRuns) {
  const auto [seed, threads] = GetParam();
  const RunOutcome a = run_random_program(seed, threads);
  const RunOutcome b = run_random_program(seed, threads);
  EXPECT_EQ(a.stats.parallel_ticks, b.stats.parallel_ticks);
  EXPECT_EQ(a.stats.tasks_executed, b.stats.tasks_executed);
  EXPECT_EQ(a.stub_total, b.stub_total);
  EXPECT_EQ(a.implicit_inclusive, b.implicit_inclusive);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomProgramTest,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull,
                                         21ull, 34ull, 55ull, 89ull),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>&
           param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_t" +
             std::to_string(std::get<1>(param_info.param));
    });

// The same invariants on the real-thread engine (timing is wall clock,
// but the structural laws are engine-independent).  Tied tasks only: the
// real engine demotes untied anyway.
class RealEngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RealEngineProperty, StructuralInvariantsHold) {
  RegionRegistry registry;
  RandomProgram program{
      registry.register_region("rand_task_a", RegionType::kTask),
      registry.register_region("rand_task_b", RegionType::kTask),
      registry.register_region("user_fn", RegionType::kFunction),
      /*max_depth=*/3,
  };
  rt::RealRuntime real;
  Instrumentor instr(registry);
  real.set_hooks(&instr);
  const auto stats = real.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < 4; ++i) {
      program.spawn(ctx, GetParam() * 77 + static_cast<std::uint64_t>(i), 0);
    }
    ctx.taskwait();
  });
  real.set_hooks(nullptr);
  instr.finalize();

  const AggregateProfile agg = instr.aggregate();
  Ticks stub_total = 0;
  for_each_node(agg.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) stub_total += node.inclusive;
    EXPECT_GE(node.exclusive(), 0);
  });
  Ticks task_total = 0;
  std::uint64_t instances = 0;
  for (const CallNode* root : agg.task_roots) {
    task_total += root->inclusive;
    instances += root->visits;
    for_each_node(root, [](const CallNode& node, int) {
      EXPECT_GE(node.exclusive(), 0);
    });
  }
  // The conservation law holds tick-exactly on the real engine too: stub
  // and instance frames are stamped from the same clock reads.
  EXPECT_EQ(stub_total, task_total);
  EXPECT_EQ(instances, stats.tasks_executed);
}

INSTANTIATE_TEST_SUITE_P(RealSeeds, RealEngineProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

// The measurement invariants must hold for any cost-model configuration:
// sweep the simulator's knobs.
struct CostCase {
  const char* name;
  rt::SimCosts costs;
  bool lifo;
  bool strict;
};

std::vector<CostCase> cost_cases() {
  std::vector<CostCase> cases;
  cases.push_back({"defaults", rt::SimCosts{}, true, true});
  rt::SimCosts free_mgmt;
  free_mgmt.create_service = 0;
  free_mgmt.dequeue_service = 0;
  free_mgmt.complete_service = 0;
  free_mgmt.contention_penalty = 0.0;
  cases.push_back({"free_management", free_mgmt, true, true});
  rt::SimCosts expensive;
  expensive.create_service = 5'000;
  expensive.dequeue_service = 5'000;
  expensive.complete_service = 5'000;
  expensive.contention_penalty = 2.0;
  cases.push_back({"expensive_lock", expensive, true, true});
  rt::SimCosts costly_events;
  costly_events.instr_event = 2'000;
  cases.push_back({"costly_events", costly_events, true, true});
  cases.push_back({"fifo_relaxed", rt::SimCosts{}, false, false});
  return cases;
}

class CostModelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CostModelSweep, InvariantsHoldForAnyCostModel) {
  const CostCase cost_case = cost_cases()[GetParam()];
  RegionRegistry registry;
  const RegionHandle task = registry.register_region("t", RegionType::kTask);
  rt::SimConfig config;
  config.costs = cost_case.costs;
  config.lifo_dequeue = cost_case.lifo;
  config.strict_taskwait_scheduling = cost_case.strict;
  rt::SimRuntime sim(config);
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  std::function<void(rt::TaskContext&, int)> rec =
      [&rec, task](rt::TaskContext& c, int depth) {
        c.work(400);
        if (depth == 0) return;
        for (int i = 0; i < 2; ++i) {
          rt::TaskAttrs attrs;
          attrs.region = task;
          c.create_task(
              [&rec, depth](rt::TaskContext& cc) { rec(cc, depth - 1); },
              attrs);
        }
        c.taskwait();
      };
  const auto stats = sim.parallel(4, [&](rt::TaskContext& ctx) {
    if (ctx.single()) rec(ctx, 6);
  });
  sim.set_hooks(nullptr);
  instr.finalize();

  const AggregateProfile agg = instr.aggregate();
  EXPECT_EQ(stats.tasks_executed, 126u) << cost_case.name;
  Ticks stub_total = 0;
  for_each_node(agg.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) stub_total += node.inclusive;
    EXPECT_GE(node.exclusive(), 0) << cost_case.name;
  });
  Ticks task_total = 0;
  for (const CallNode* root : agg.task_roots) task_total += root->inclusive;
  EXPECT_EQ(stub_total, task_total) << cost_case.name;
  // All declared work (126 tasks x 400 plus creators' shares) is inside
  // the task trees.
  EXPECT_GE(task_total, 126 * 400) << cost_case.name;
}

INSTANTIATE_TEST_SUITE_P(Models, CostModelSweep,
                         ::testing::Range<std::size_t>(0, 5));

TEST(SchedulingBound, StrictPolicyBoundsConcurrencyByDepth) {
  // Binary task tree of depth 8: under strict scheduling the live
  // instance count per thread stays within the chain depth (+1 for the
  // freshly started task), for every team size.
  RegionRegistry registry;
  const RegionHandle task = registry.register_region("t", RegionType::kTask);
  for (int threads : {1, 2, 4, 8, 16}) {
    rt::SimRuntime sim;
    Instrumentor instr(registry);
    sim.set_hooks(&instr);
    std::function<void(rt::TaskContext&, int)> rec =
        [&rec, task](rt::TaskContext& c, int depth) {
          c.work(300);
          if (depth == 0) return;
          for (int i = 0; i < 2; ++i) {
            rt::TaskAttrs attrs;
            attrs.region = task;
            c.create_task(
                [&rec, depth](rt::TaskContext& cc) { rec(cc, depth - 1); },
                attrs);
          }
          c.taskwait();
        };
    sim.parallel(threads, [&](rt::TaskContext& ctx) {
      if (ctx.single()) rec(ctx, 8);
    });
    sim.set_hooks(nullptr);
    instr.finalize();
    const AggregateProfile agg = instr.aggregate();
    EXPECT_LE(agg.max_concurrent_any_thread, 9u) << threads << " threads";
  }
}

TEST(RandomProgramEdge, ZeroTaskProgramStillProfiles) {
  RegionRegistry registry;
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  auto stats = sim.parallel(4, [](rt::TaskContext& ctx) { ctx.work(1'000); });
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_TRUE(agg.task_roots.empty());
  ASSERT_NE(agg.implicit_root, nullptr);
  EXPECT_GE(agg.implicit_root->inclusive, 4'000);
}

TEST(RandomProgramEdge, DeepChainOfSingleChildren) {
  RegionRegistry registry;
  const RegionHandle region =
      registry.register_region("chain", RegionType::kTask);
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  std::function<void(rt::TaskContext&, int)> chain =
      [&](rt::TaskContext& ctx, int depth) {
        rt::TaskAttrs attrs;
        attrs.region = region;
        ctx.create_task(
            [&chain, depth](rt::TaskContext& c) {
              c.work(50);
              if (depth > 0) {
                chain(c, depth - 1);
                c.taskwait();
              }
            },
            attrs);
      };
  auto stats = sim.parallel(2, [&](rt::TaskContext& ctx) {
    if (ctx.single()) chain(ctx, 60);
  });
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();
  EXPECT_EQ(stats.tasks_executed, 61u);
  // The dependency chain forces ~chain-depth concurrent instances
  // (paper §V-B: "the longest dependency chain ... may serve as a good
  // estimate for the number of concurrent tasks").
  EXPECT_GE(agg.max_concurrent_any_thread, 30u);
}

}  // namespace
}  // namespace taskprof
