// The invariant checker and the differential projection (src/check/):
// clean profiles from both engines pass, and deliberately injected
// defects — the mutation negative tests — are caught with the right tag.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "check/differential.hpp"
#include "instrument/instrumentor.hpp"
#include "profile/calltree.hpp"
#include "profile/region.hpp"
#include "rt/hooks.hpp"
#include "rt/real_runtime.hpp"
#include "rt/sim_runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof {
namespace {

/// One instrumented fib run: registry, engine stats, telemetry snapshot
/// and the finalized aggregate profile.  Filled in place (the registry is
/// not movable).
struct Measured {
  RegionRegistry registry;
  rt::TeamStats stats;
  telemetry::Snapshot snapshot;
  AggregateProfile profile;
};

void run_fib(Measured& out, rt::Runtime& runtime, int threads = 2,
             int n = 12) {
  Instrumentor instr(out.registry);
  telemetry::Registry telem;
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  runtime.set_telemetry(&telem);

  const RegionHandle task =
      out.registry.register_region("fib_task", RegionType::kTask);
  std::function<void(rt::TaskContext&, int, long*)> fib =
      [&](rt::TaskContext& ctx, int n_, long* result) {
        ctx.work(100);
        if (n_ < 2) {
          *result = n_;
          return;
        }
        long a = 0;
        long b = 0;
        rt::TaskAttrs attrs;
        attrs.region = task;
        ctx.create_task(
            [&fib, n_, &a](rt::TaskContext& c) { fib(c, n_ - 1, &a); },
            attrs);
        ctx.create_task(
            [&fib, n_, &b](rt::TaskContext& c) { fib(c, n_ - 2, &b); },
            attrs);
        ctx.taskwait();
        *result = a + b;
      };
  long result = 0;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (ctx.single()) fib(ctx, n, &result);
  });

  runtime.set_hooks(nullptr);
  runtime.set_telemetry(nullptr);
  instr.finalize();
  out.profile = instr.aggregate();
  out.snapshot = telem.snapshot();
}

bool has_tag(const check::InvariantReport& report, const std::string& tag) {
  const std::string needle = "[" + tag + "]";
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(CheckInvariants, CleanSimProfilePasses) {
  Measured m;
  rt::SimRuntime sim;
  run_fib(m, sim);
  const check::InvariantReport report =
      check::check_profile(m.profile, m.registry, &m.stats, &m.snapshot);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(report.nodes_checked, 10u);
}

TEST(CheckInvariants, CleanRealProfilePasses) {
  for (rt::SchedulerKind kind :
       {rt::SchedulerKind::kMutexDeque, rt::SchedulerKind::kChaseLev}) {
    SCOPED_TRACE(kind == rt::SchedulerKind::kChaseLev ? "chase_lev"
                                                      : "mutex_deque");
    Measured m;
    rt::RealConfig config;
    config.scheduler = kind;
    rt::RealRuntime real(config);
    run_fib(m, real);
    const check::InvariantReport report =
        check::check_profile(m.profile, m.registry, &m.stats, &m.snapshot);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

// The acceptance negative test: inject a merge bug (an extra visit on a
// merged task root, as a broken instance-tree merge would produce) and
// require the checker to flag it — on both engines.
TEST(CheckInvariants, InjectedMergeBugIsCaughtOnSim) {
  Measured m;
  rt::SimRuntime sim;
  run_fib(m, sim);
  ASSERT_FALSE(m.profile.task_roots.empty());
  m.profile.task_roots[0]->visits += 1;
  const check::InvariantReport report =
      check::check_profile(m.profile, m.registry, &m.stats, &m.snapshot);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_tag(report, "merge-conservation")) << report.to_string();
  EXPECT_TRUE(has_tag(report, "fragment-count")) << report.to_string();
}

TEST(CheckInvariants, InjectedMergeBugIsCaughtOnReal) {
  Measured m;
  rt::RealRuntime real;
  run_fib(m, real);
  ASSERT_FALSE(m.profile.task_roots.empty());
  m.profile.task_roots[0]->visits += 1;
  const check::InvariantReport report =
      check::check_profile(m.profile, m.registry, &m.stats, &m.snapshot);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_tag(report, "merge-conservation")) << report.to_string();
}

TEST(CheckInvariants, TamperedInclusiveBreaksTimeConservation) {
  Measured m;
  rt::SimRuntime sim;
  run_fib(m, sim);
  ASSERT_FALSE(m.profile.task_roots.empty());
  m.profile.task_roots[0]->inclusive -= 7;
  const check::InvariantReport report =
      check::check_profile(m.profile, m.registry, &m.stats, &m.snapshot);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_tag(report, "conservation")) << report.to_string();
  EXPECT_TRUE(has_tag(report, "fragment-sum")) << report.to_string();
}

TEST(CheckInvariants, StubOutsideSchedulingPointIsFlagged) {
  // Hand-built minimal profile: a stub hanging directly under the implicit
  // task root, which is not a scheduling point.
  RegionRegistry registry;
  const RegionHandle implicit =
      registry.register_region("implicit", RegionType::kImplicitTask);
  const RegionHandle task = registry.register_region("t", RegionType::kTask);

  AggregateProfile profile;
  profile.thread_count = 1;
  profile.max_concurrent_per_thread = {1};
  profile.max_concurrent_any_thread = 1;
  profile.implicit_root =
      profile.pool.allocate(implicit, kNoParameter, false, nullptr);
  profile.implicit_root->visits = 1;
  profile.implicit_root->inclusive = 100;
  profile.implicit_root->visit_stats.add(100);
  CallNode* stub =
      profile.pool.allocate(task, kNoParameter, true, profile.implicit_root);
  stub->visits = 1;
  stub->inclusive = 10;
  stub->visit_stats.add(10);

  const check::InvariantReport report =
      check::check_profile(profile, registry);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_tag(report, "stub-placement")) << report.to_string();
}

TEST(CheckDifferential, SimAndRealFibProjectionsAgree) {
  Measured sim_run;
  rt::SimRuntime sim;
  run_fib(sim_run, sim);
  Measured real_run;
  rt::RealRuntime real;
  run_fib(real_run, real);

  check::ProfileProjection a = check::project_profile(
      sim_run.profile, sim_run.registry, sim_run.stats);
  a.engine = "sim";
  check::ProfileProjection b = check::project_profile(
      real_run.profile, real_run.registry, real_run.stats);
  b.engine = "real";

  const std::vector<std::string> diffs = check::diff_projections(a, b);
  std::string joined;
  for (const std::string& d : diffs) joined += d + "\n";
  EXPECT_TRUE(diffs.empty()) << joined;
}

TEST(CheckDifferential, TamperedProjectionIsDetected) {
  Measured m;
  rt::SimRuntime sim;
  run_fib(m, sim);
  const check::ProfileProjection a =
      check::project_profile(m.profile, m.registry, m.stats);
  check::ProfileProjection b = a;
  ASSERT_FALSE(b.constructs.empty());
  b.constructs[0].instances += 1;
  b.tasks_executed += 1;
  const std::vector<std::string> diffs = check::diff_projections(a, b);
  EXPECT_GE(diffs.size(), 2u);
}

}  // namespace
}  // namespace taskprof
