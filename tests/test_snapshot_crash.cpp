// Crash injection for the snapshot flusher: a forked child profiles fib
// with periodic flushing, the parent SIGKILLs it at seeded random
// points, and whatever .tpsnap survived must load, validate under
// check_profile, and carry visit counts bounded by the clean run — the
// acceptance scenario for "crash-safe".
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bots/kernel.hpp"
#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/real_runtime.hpp"
#include "snapshot/flusher.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof {
namespace {

constexpr int kChildIterations = 400;  ///< clean-run bound, never reached

bots::KernelConfig child_config() {
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;
  return config;
}

/// One clean fib iteration: how many fib_task instances a single run
/// executes (deterministic — fib's task structure does not depend on the
/// schedule).
std::uint64_t tasks_per_clean_run() {
  RegionRegistry registry;
  rt::RealRuntime runtime;
  Instrumentor instr(registry);
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);
  auto kernel = bots::make_kernel("fib");
  const bots::KernelResult result =
      kernel->run(runtime, registry, child_config());
  runtime.set_hooks(nullptr);
  return result.stats.tasks_executed;
}

/// Child body: profile fib in a loop with 2 ms periodic flushing until
/// SIGKILLed.  Never returns normally within the test's kill window.
[[noreturn]] void child_run(const std::string& path) {
  RegionRegistry registry;
  MeasureOptions options;
  options.snapshot_every = 1;  // arm the capture handshake
  Instrumentor instr(registry, options);
  rt::RealRuntime runtime;
  rt::FanoutHooks fanout({&instr});
  runtime.set_hooks(&fanout);

  snapshot::FlusherOptions flush_options;
  flush_options.path = path;
  flush_options.interval = 2'000'000;  // 2 ms
  snapshot::SnapshotFlusher flusher(instr, registry, flush_options);
  flusher.start();

  auto kernel = bots::make_kernel("fib");
  const bots::KernelConfig config = child_config();
  for (int i = 0; i < kChildIterations; ++i) {
    (void)kernel->run(runtime, registry, config);
  }
  _exit(0);
}

std::uint64_t visits_by_name(const snapshot::SnapshotData& data,
                             const std::string& name) {
  std::uint64_t visits = 0;
  for (const CallNode* root : data.profile.task_roots) {
    if (data.registry->info(root->region).name == name) {
      visits += root->visits;
    }
  }
  return visits;
}

TEST(SnapshotCrash, SigkilledRunLeavesLoadableValidSnapshot) {
  const std::uint64_t per_run = tasks_per_clean_run();
  ASSERT_GT(per_run, 0u);

  Xoshiro256 rng(0xC4A5'11ED'5EEDull);
  int loadable = 0;
  constexpr int kSeeds = 5;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string path = testing::TempDir() + "crash_" +
                             std::to_string(seed) + ".tpsnap";
    std::remove(path.c_str());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) child_run(path);  // never returns

    // Kill between 4 ms and 124 ms in: late enough that the immediate
    // first flush usually lands, early enough to interrupt the loop.
    const std::uint64_t delay_us = 4000 + rng.next_below(120'000);
    ::usleep(static_cast<useconds_t>(delay_us));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    if (!std::filesystem::exists(path)) continue;  // killed before flush 1
    ++loadable;

    // Atomic rename means the surviving file is a complete snapshot: it
    // must decode and pass every structural check.
    const snapshot::SnapshotData data = snapshot::read_snapshot_file(path);
    const check::InvariantReport verdict =
        check::check_profile(data.profile, *data.registry);
    EXPECT_TRUE(verdict.ok()) << verdict.to_string();
    EXPECT_GE(data.meta.flush_seq, 1u);

    // A crashed run can only ever have recorded a prefix of the work.
    EXPECT_LE(visits_by_name(data, "fib_task"),
              per_run * kChildIterations);
    std::remove(path.c_str());
  }
  // The first flush fires immediately on start(), so at least one seeded
  // kill point must have left a file.
  EXPECT_GE(loadable, 1);
}

}  // namespace
}  // namespace taskprof
