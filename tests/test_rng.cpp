#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace taskprof {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, ZeroSeedProducesNonZeroStream) {
  Xoshiro256 rng(0);
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= rng.next() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, RoughlyUniformBuckets) {
  Xoshiro256 rng(1234);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(rng.next_double() * kBuckets)];
  }
  for (int count : counts) {
    EXPECT_GT(count, kSamples / kBuckets * 0.9);
    EXPECT_LT(count, kSamples / kBuckets * 1.1);
  }
}

TEST(Xoshiro256, NoShortCycle) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) seen.insert(rng.next());
  EXPECT_EQ(seen.size(), 10'000u);
}

}  // namespace
}  // namespace taskprof
