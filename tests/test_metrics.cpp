#include "profile/metrics.hpp"

#include <gtest/gtest.h>

namespace taskprof {
namespace {

TEST(DurationStats, EmptyState) {
  DurationStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.sum, 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(DurationStats, SingleSample) {
  DurationStats stats;
  stats.add(42);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_EQ(stats.sum, 42);
  EXPECT_EQ(stats.min, 42);
  EXPECT_EQ(stats.max, 42);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
}

TEST(DurationStats, TracksMinMaxMean) {
  DurationStats stats;
  stats.add(10);
  stats.add(30);
  stats.add(20);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.sum, 60);
  EXPECT_EQ(stats.min, 10);
  EXPECT_EQ(stats.max, 30);
  EXPECT_DOUBLE_EQ(stats.mean(), 20.0);
}

TEST(DurationStats, ZeroDurationsAreValidSamples) {
  DurationStats stats;
  stats.add(0);
  stats.add(0);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 0);
}

TEST(DurationStats, MergeCombines) {
  DurationStats a;
  a.add(5);
  a.add(15);
  DurationStats b;
  b.add(1);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 121);
  EXPECT_EQ(a.min, 1);
  EXPECT_EQ(a.max, 100);
}

TEST(DurationStats, MergeEmptyIsNoop) {
  DurationStats a;
  a.add(7);
  DurationStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count, 1u);
  EXPECT_EQ(a.min, 7);
  EXPECT_EQ(a.max, 7);
}

TEST(DurationStats, MergeIntoEmptyAdopts) {
  DurationStats a;
  DurationStats b;
  b.add(3);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.min, 3);
  EXPECT_EQ(a.max, 9);
}

TEST(DurationStats, ResetClears) {
  DurationStats stats;
  stats.add(5);
  stats.reset();
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.sum, 0);
}

}  // namespace
}  // namespace taskprof
