// Ingestion protocol fuzzing: the daemon-side Session must survive any
// byte stream — truncations, bit flips, duplicated and reordered
// frames, reconnect replays — always answering hostile input with a
// typed Error frame, never crashing, never corrupting its state.
// Replays the committed corpus under tests/corpus/ingest/: "ok_" files
// must produce zero Error frames, "bad_<errc-name>_" files must
// produce at least one Error frame carrying exactly that code.  Set
// TASKPROF_REGEN_INGEST=1 to rewrite the corpus from the generators.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ingest/client.hpp"
#include "ingest/delta.hpp"
#include "ingest/daemon.hpp"
#include "ingest/protocol.hpp"
#include "ingest/session.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes concat(std::initializer_list<Bytes> parts) {
  Bytes out;
  for (const Bytes& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

/// Deterministic producer snapshot (the corpus must be byte-stable).
snapshot::SnapshotData fuzz_snapshot(int stage) {
  snapshot::SnapshotData data;
  data.registry = std::make_unique<RegionRegistry>();
  const RegionHandle implicit = data.registry->register_region(
      "implicit task", RegionType::kImplicitTask);
  const RegionHandle work =
      data.registry->register_region("work", RegionType::kFunction);
  AggregateProfile& p = data.profile;
  p.thread_count = 1;
  p.max_concurrent_per_thread = {1};
  p.max_concurrent_any_thread = 1;
  p.implicit_root = p.pool.allocate(implicit, kNoParameter, false, nullptr);
  p.implicit_root->visits = static_cast<std::uint64_t>(stage) + 2;
  p.implicit_root->inclusive = static_cast<Ticks>((stage + 2) * 10);
  for (int v = 0; v < stage + 2; ++v) p.implicit_root->visit_stats.add(10);
  CallNode* leaf = p.pool.allocate(work, kNoParameter, false, p.implicit_root);
  leaf->visits = static_cast<std::uint64_t>(stage) + 1;
  leaf->inclusive = static_cast<Ticks>(stage + 1);
  for (int v = 0; v <= stage; ++v) leaf->visit_stats.add(1);
  data.meta.flush_seq = static_cast<std::uint64_t>(stage) + 1;
  data.meta.process_id = 4242;
  return data;
}

Bytes hello_bytes() { return encode_hello({kProtocolVersion, 4242, "fuzz"}); }

Bytes rebase_bytes(std::uint64_t seq, int stage) {
  DeltaFrame frame;
  frame.seq = seq;
  frame.base_seq = 0;
  frame.rebase = true;
  frame.snapshot = snapshot::encode_snapshot(fuzz_snapshot(stage));
  return encode_delta(frame);
}

/// The committed seed corpus: name -> byte stream.  "ok_" streams must
/// sail through a Session without a single Error frame; "bad_<errc>_"
/// streams must elicit that exact error code.
std::map<std::string, Bytes> seed_corpus() {
  std::map<std::string, Bytes> corpus;
  corpus["ok_handshake_bye.tpif"] = concat({hello_bytes(), encode_bye({0})});
  corpus["ok_heartbeat.tpif"] =
      concat({hello_bytes(), encode_heartbeat({7}), encode_bye({0})});
  corpus["ok_single_rebase.tpif"] =
      concat({hello_bytes(), rebase_bytes(1, 0), encode_bye({1})});
  {
    // A real delta chain: rebase, then the stage-1 increment.
    const snapshot::SnapshotData early = fuzz_snapshot(0);
    DeltaFrame second;
    second.seq = 2;
    second.base_seq = 1;
    second.rebase = false;
    // The delta payload is itself produced by the shipping subtractor.
    snapshot::SnapshotData late = fuzz_snapshot(1);
    second.snapshot =
        snapshot::encode_snapshot(subtract_snapshot(late, &early).snapshot);
    corpus["ok_delta_chain.tpif"] = concat(
        {hello_bytes(), rebase_bytes(1, 0), encode_delta(second),
         encode_bye({2})});
  }
  // Reconnect replay: the same seq arrives twice and is re-acked, not
  // merged twice — by protocol contract that is NOT an error.
  corpus["ok_duplicate_replay.tpif"] =
      concat({hello_bytes(), rebase_bytes(1, 0), rebase_bytes(1, 0),
              encode_bye({1})});
  {
    Bytes bad = concat({hello_bytes(), encode_heartbeat({1})});
    bad[hello_bytes().size()] = 'X';  // corrupt the second frame's magic
    corpus["bad_bad-magic_second_frame.tpif"] = bad;
  }
  {
    Bytes bad = concat({hello_bytes(), encode_heartbeat({1})});
    bad[hello_bytes().size() + 4] = 0xEE;  // unknown frame type byte
    corpus["bad_bad-type_unknown.tpif"] = bad;
  }
  {
    Bytes bad = concat({hello_bytes(), rebase_bytes(1, 0)});
    bad.back() ^= 0x01;  // flip one payload bit: CRC must catch it
    corpus["bad_bad-crc_bitflip.tpif"] = bad;
  }
  {
    Bytes frame = encode_heartbeat({1});
    frame[5] = 0xFF;  // declared payload size: ~2 GiB
    frame[6] = 0xFF;
    frame[7] = 0xFF;
    frame[8] = 0x7F;
    corpus["bad_limit_oversized.tpif"] = concat({hello_bytes(), frame});
  }
  {
    DeltaFrame gap;
    gap.seq = 5;  // daemon has acked nothing: sequence gap
    gap.base_seq = 4;
    gap.snapshot = snapshot::encode_snapshot(fuzz_snapshot(0));
    corpus["bad_bad-seq_gap.tpif"] =
        concat({hello_bytes(), encode_delta(gap)});
  }
  corpus["bad_bad-state_delta_before_hello.tpif"] = rebase_bytes(1, 0);
  corpus["bad_bad-state_double_hello.tpif"] =
      concat({hello_bytes(), hello_bytes()});
  corpus["bad_bad-version_future_hello.tpif"] =
      encode_hello({kProtocolVersion + 41, 1, "time-traveler"});
  {
    DeltaFrame garbage;
    garbage.seq = 1;
    garbage.rebase = true;
    garbage.snapshot = {0xDE, 0xAD, 0xBE, 0xEF};  // not a .tpsnap
    corpus["bad_malformed_not_a_snapshot.tpif"] =
        concat({hello_bytes(), encode_delta(garbage)});
  }
  return corpus;
}

/// Feed a stream to a fresh Session and collect the reply frames.  The
/// core guarantee under fuzz: this never crashes and never throws.
std::vector<Frame> replay(const Bytes& stream) {
  Session session(1, "fuzz");
  session.consume(stream);
  const Bytes output = session.take_output();
  FrameReader reader("fuzz-replies");
  reader.feed(output);
  std::vector<Frame> frames;
  while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  return frames;
}

std::vector<Frame> errors_in(const std::vector<Frame>& frames) {
  std::vector<Frame> errors;
  for (const Frame& frame : frames) {
    if (frame.type == FrameType::kError) errors.push_back(frame);
  }
  return errors;
}

/// "bad_bad-seq_gap.tpif" -> "bad-seq".
std::string expected_errc(const std::string& name) {
  const std::string rest = name.substr(4);  // strip "bad_"
  return rest.substr(0, rest.find('_'));
}

TEST(IngestFuzz, CommittedCorpusReplays) {
  const std::filesystem::path dir = TASKPROF_INGEST_CORPUS_DIR;
  if (std::getenv("TASKPROF_REGEN_INGEST") != nullptr) {
    std::filesystem::create_directories(dir);
    for (const auto& [name, bytes] : seed_corpus()) {
      std::ofstream out(dir / name, std::ios::binary);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
  }
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t ok_files = 0;
  std::size_t bad_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".tpif") continue;
    const std::string name = entry.path().filename().string();
    SCOPED_TRACE(name);
    std::ifstream in(entry.path(), std::ios::binary);
    ASSERT_TRUE(in) << name;
    const Bytes bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const std::vector<Frame> replies = replay(bytes);
    const std::vector<Frame> errors = errors_in(replies);
    if (name.rfind("ok_", 0) == 0) {
      ++ok_files;
      EXPECT_TRUE(errors.empty())
          << name << " produced "
          << (errors.empty()
                  ? ""
                  : std::string(errc_name(
                        decode_error(errors.front(), name).code)));
    } else if (name.rfind("bad_", 0) == 0) {
      ++bad_files;
      ASSERT_FALSE(errors.empty()) << name << " was accepted";
      bool matched = false;
      for (const Frame& error : errors) {
        if (errc_name(decode_error(error, name).code) ==
            expected_errc(name)) {
          matched = true;
        }
      }
      EXPECT_TRUE(matched)
          << name << " expected errc " << expected_errc(name) << ", got "
          << errc_name(decode_error(errors.front(), name).code);
    } else {
      ADD_FAILURE() << "corpus file " << name
                    << " must start with ok_ or bad_";
    }
  }
  EXPECT_GE(ok_files, 5u);
  EXPECT_GE(bad_files, 8u);
}

TEST(IngestFuzz, SeedCorpusGeneratorsMatchTheCommittedFiles) {
  // The generators above are the corpus' source of truth; if an
  // encoding change drifts them away from the committed bytes, fail
  // loudly so the corpus is regenerated deliberately (not silently).
  const std::filesystem::path dir = TASKPROF_INGEST_CORPUS_DIR;
  for (const auto& [name, bytes] : seed_corpus()) {
    SCOPED_TRACE(name);
    std::ifstream in(dir / name, std::ios::binary);
    ASSERT_TRUE(in) << "missing " << name
                    << " (run with TASKPROF_REGEN_INGEST=1)";
    const Bytes committed((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    EXPECT_EQ(committed, bytes) << name;
  }
}

TEST(IngestFuzz, EveryTruncationSurvives) {
  Bytes stream;
  {
    const auto corpus = seed_corpus();
    stream = corpus.at("ok_delta_chain.tpif");
  }
  for (std::size_t len = 0; len < stream.size(); ++len) {
    const Bytes cut(stream.begin(), stream.begin() + static_cast<long>(len));
    const std::vector<Frame> replies = replay(cut);  // must not crash
    // A truncated tail is just an incomplete frame: whatever parsed
    // before it parsed cleanly, so no Error frame may appear.
    EXPECT_TRUE(errors_in(replies).empty()) << "len " << len;
  }
}

TEST(IngestFuzz, SeededBitFlipsNeverCrashTheSession) {
  Bytes stream;
  {
    const auto corpus = seed_corpus();
    stream = corpus.at("ok_delta_chain.tpif");
  }
  Xoshiro256 rng(0x1B6E57'F1A5ull);
  std::size_t rejected = 0;
  constexpr int kRounds = 2000;
  for (int i = 0; i < kRounds; ++i) {
    Bytes mutated = stream;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    const std::vector<Frame> replies = replay(mutated);
    if (!errors_in(replies).empty()) ++rejected;
  }
  // Headers and CRCs cover every byte; the rare survivor flips inside
  // the producer-name or a still-valid varint of the hello payload.
  EXPECT_GT(rejected, kRounds * 8 / 10);
}

TEST(IngestFuzz, DuplicatedAndReorderedFramesNeverCrash) {
  const auto corpus = seed_corpus();
  const Bytes hello = hello_bytes();
  const Bytes delta1 = rebase_bytes(1, 0);
  const Bytes delta2 = rebase_bytes(2, 1);
  const Bytes bye = encode_bye({2});
  const std::vector<Bytes> frames = {hello, delta1, delta2, bye};
  Xoshiro256 rng(0x5EED'0BDEull);
  for (int round = 0; round < 500; ++round) {
    // Random multiset of the session's frames in random order, with
    // duplicates: the session must stay coherent on all of them.
    Bytes stream;
    const std::size_t count = 1 + rng.next_below(8);
    for (std::size_t f = 0; f < count; ++f) {
      const Bytes& frame = frames[rng.next_below(frames.size())];
      stream.insert(stream.end(), frame.begin(), frame.end());
    }
    const std::vector<Frame> replies = replay(stream);
    for (const Frame& reply : replies) {
      if (reply.type == FrameType::kError) {
        (void)decode_error(reply, "reorder");  // must itself be well-formed
      }
    }
  }
}

TEST(IngestFuzz, RawGarbageCannotKillTheDaemon) {
  DaemonOptions options;
  options.socket_path =
      testing::TempDir() + "taskprofd_fuzz.scratch.sock";
  IngestDaemon daemon(options);
  daemon.start();

  Xoshiro256 rng(0xDEAD'BEEF'0001ull);
  for (int round = 0; round < 32; ++round) {
    ClientOptions copts;
    copts.socket_path = options.socket_path;
    IngestClient probe(copts);
    // Abuse the client's transport: connect, then push garbage by hand.
    probe.connect();
    Bytes garbage(1 + rng.next_below(512));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    // A fresh Hello went through, so the garbage lands mid-session.
    try {
      (void)probe.send_snapshot(fuzz_snapshot(0));
    } catch (const IngestError&) {
    }
    probe.close();
    // (The raw bytes path: a separate unframed connection.)
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options.socket_path.c_str(),
                options.socket_path.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    (void)::write(fd, garbage.data(), garbage.size());
    ::close(fd);
  }

  // After all that hostility, a well-behaved producer still works.
  ClientOptions copts;
  copts.socket_path = options.socket_path;
  copts.process_id = 1;
  IngestClient client(copts);
  (void)client.send_snapshot(fuzz_snapshot(1));
  client.finish(nullptr);
  const auto body = query_report(options.socket_path, ReportKind::kStats);
  EXPECT_FALSE(body.empty());
  EXPECT_GT(daemon.stats().frames_rejected, 0u);
  daemon.stop();
}

}  // namespace
}  // namespace taskprof::ingest
