// Deterministic-replay regression corpus: every curated seed in
// tests/corpus/ must replay tick-identically on the sim engine (two runs,
// byte-equal Chrome traces) and pass the full invariant + differential
// check on both engines.  Add a .case file here whenever a fuzzing run
// shrinks a real scheduler bug, so the fixed bug stays fixed.
#include "check/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace taskprof {
namespace {

#ifndef TASKPROF_CORPUS_DIR
#error "tests/CMakeLists.txt must define TASKPROF_CORPUS_DIR"
#endif

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(TASKPROF_CORPUS_DIR)) {
    if (entry.path().extension() == ".case") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool parse_case(const std::filesystem::path& path, check::FuzzCase* out,
                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path.string();
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    std::string value;
    if (!(fields >> key >> value)) {
      *error = "malformed line '" + line + "'";
      return false;
    }
    if (key == "kernel") {
      out->kernel = value;
    } else if (key == "threads") {
      out->threads = std::stoi(value);
    } else if (key == "seed") {
      out->seed = std::stoull(value, nullptr, 0);
    } else if (key == "size") {
      if (!check::parse_size(value, &out->size)) {
        *error = "bad size '" + value + "'";
        return false;
      }
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  }
  return true;
}

TEST(ReplayCorpus, CorpusIsNonEmpty) {
  EXPECT_GE(corpus_files().size(), 3u)
      << "curated corpus went missing from " << TASKPROF_CORPUS_DIR;
}

TEST(ReplayCorpus, EverySeedReplaysIdenticallyAndPasses) {
  for (const std::filesystem::path& file : corpus_files()) {
    check::FuzzCase c;
    std::string error;
    ASSERT_TRUE(parse_case(file, &c, &error))
        << file.filename() << ": " << error;
    SCOPED_TRACE(::testing::Message()
                 << file.filename().string() << " — "
                 << check::replay_command(c));
    const check::ReplayResult result = check::replay_seed(c);
    EXPECT_TRUE(result.trace_identical)
        << "two sim runs with the same seed diverged ("
        << result.event_count << " events)";
    EXPECT_GT(result.event_count, 0u);
    for (const std::string& problem : result.problems) {
      ADD_FAILURE() << problem;
    }
  }
}

}  // namespace
}  // namespace taskprof
