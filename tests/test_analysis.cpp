#include "report/analysis.hpp"

#include <gtest/gtest.h>

#include "bots/kernel.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  /// Run a program with `count` tasks of `task_work` ns each and one
  /// taskwait in the creator.
  AggregateProfile run(int count, Ticks task_work, int threads = 2) {
    Instrumentor instr(registry_);
    sim_.set_hooks(&instr);
    sim_.parallel(threads, [&](rt::TaskContext& ctx) {
      if (!ctx.single()) return;
      for (int i = 0; i < count; ++i) {
        rt::TaskAttrs attrs;
        attrs.region = task_;
        ctx.create_task(
            [task_work](rt::TaskContext& c) { c.work(task_work); }, attrs);
      }
      ctx.taskwait();
    });
    sim_.set_hooks(nullptr);
    instr.finalize();
    return instr.aggregate();
  }

  RegionRegistry registry_;
  RegionHandle task_ = registry_.register_region("tiny_task",
                                                 RegionType::kTask);
  rt::SimRuntime sim_;
};

TEST_F(AnalysisTest, TaskConstructStatsCountInstancesAndCreations) {
  const AggregateProfile agg = run(20, 1'000);
  const auto stats = task_construct_stats(agg, registry_);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "tiny_task");
  EXPECT_EQ(stats[0].instances, 20u);
  EXPECT_EQ(stats[0].creations, 20u);
  EXPECT_GT(stats[0].create_total, 0);
  EXPECT_GT(stats[0].create_mean, 0.0);
  EXPECT_GE(stats[0].inclusive_mean, 1'000.0);
  EXPECT_GE(stats[0].inclusive_min, 1'000);
  EXPECT_LE(stats[0].inclusive_min, stats[0].inclusive_max);
}

TEST_F(AnalysisTest, SchedulingPointSummaryAccountsBarrierSplit) {
  const AggregateProfile agg = run(20, 50'000);
  const auto summary = scheduling_point_summary(agg, registry_);
  EXPECT_GT(summary.parallel_inclusive, 0);
  EXPECT_GT(summary.barrier_inclusive, 0);
  // Tasks executed inside the barrier show up as stub time, and
  // stub + exclusive == inclusive for barrier nodes without other children.
  EXPECT_GT(summary.barrier_stub_time, 0);
  EXPECT_EQ(summary.barrier_inclusive,
            summary.barrier_stub_time + summary.barrier_exclusive);
  EXPECT_GT(summary.create_exclusive, 0);
  EXPECT_GT(summary.taskwait_exclusive, 0);
}

TEST_F(AnalysisTest, AdvisorFlagsTinyTasks) {
  // 1 us tasks: well under the 10 us threshold -> "too small" problem.
  const AggregateProfile agg = run(100, 300);
  const auto findings = diagnose(agg, registry_);
  bool found_small = false;
  for (const auto& finding : findings) {
    if (finding.severity == Finding::Severity::kProblem &&
        finding.message.find("too small") != std::string::npos) {
      found_small = true;
    }
  }
  EXPECT_TRUE(found_small);
}

TEST_F(AnalysisTest, AdvisorQuietForCoarseTasks) {
  // 1 ms tasks: creation is negligible, no findings beyond the info line.
  const AggregateProfile agg = run(16, 1'000'000);
  const auto findings = diagnose(agg, registry_);
  for (const auto& finding : findings) {
    EXPECT_NE(finding.severity, Finding::Severity::kProblem)
        << finding.message;
  }
}

TEST_F(AnalysisTest, AdvisorFlagsCreationDominatedTasks) {
  const AggregateProfile agg = run(200, 100);
  const auto findings = diagnose(agg, registry_);
  bool found_create = false;
  for (const auto& finding : findings) {
    if (finding.message.find("creation time") != std::string::npos) {
      found_create = true;
    }
  }
  EXPECT_TRUE(found_create);
}

TEST_F(AnalysisTest, RenderFindingsTagsSeverity) {
  std::vector<Finding> findings = {
      {Finding::Severity::kInfo, "alpha"},
      {Finding::Severity::kWarning, "beta"},
      {Finding::Severity::kProblem, "gamma"},
  };
  const std::string out = render_findings(findings);
  EXPECT_NE(out.find("[info]    alpha"), std::string::npos);
  EXPECT_NE(out.find("[warning] beta"), std::string::npos);
  EXPECT_NE(out.find("[problem] gamma"), std::string::npos);
}

TEST_F(AnalysisTest, ParameterBreakdownSortsAndAggregates) {
  auto kernel = bots::make_kernel("nqueens");
  bots::KernelConfig config;
  config.threads = 2;
  config.size = bots::SizeClass::kTest;
  config.depth_parameter = true;
  RegionRegistry registry;
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  sim.set_hooks(&instr);
  kernel->run(sim, registry, config);
  sim.set_hooks(nullptr);
  instr.finalize();
  const AggregateProfile agg = instr.aggregate();

  const RegionHandle nqueens_region =
      registry.register_region("nqueens_task", RegionType::kTask);
  const auto rows = parameter_breakdown(agg, registry, nqueens_region);
  ASSERT_GE(rows.size(), 8u);
  // Sorted ascending by depth.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].parameter, rows[i].parameter);
  }
  // Task counts grow with depth in nqueens (paper Table IV pattern) for
  // the early levels: depth 1 has more tasks than depth 0.
  EXPECT_GT(rows[1].instances, rows[0].instances);
  // The root task count at depth 0 is exactly 1 (the initial spawn).
  EXPECT_EQ(rows[0].parameter, 0);
  EXPECT_EQ(rows[0].instances, 1u);
  // Mean inclusive time decreases with depth (inclusive: deeper tasks do
  // less total work).
  EXPECT_GT(rows[0].inclusive_mean, rows[rows.size() - 2].inclusive_mean);
}

TEST_F(AnalysisTest, BreakdownEmptyWithoutParameters) {
  const AggregateProfile agg = run(5, 1'000);
  EXPECT_TRUE(parameter_breakdown(agg, registry_, task_).empty());
}

}  // namespace
}  // namespace taskprof
