#include "rt/steal_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace taskprof::rt {
namespace {

// Items are synthetic non-null pointers encoding an index.
void* token(std::uintptr_t index) {
  return reinterpret_cast<void*>(index + 1);
}

std::uintptr_t index_of(void* item) {
  return reinterpret_cast<std::uintptr_t>(item) - 1;
}

TEST(StealDequeTest, PopIsLifoStealIsFifo) {
  StealDeque dq;
  for (std::uintptr_t i = 0; i < 4; ++i) dq.push(token(i));
  EXPECT_EQ(index_of(dq.steal()), 0u);  // oldest
  EXPECT_EQ(index_of(dq.pop()), 3u);    // newest
  EXPECT_EQ(index_of(dq.steal()), 1u);
  EXPECT_EQ(index_of(dq.pop()), 2u);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
  EXPECT_TRUE(dq.empty());
}

TEST(StealDequeTest, EmptyDequeYieldsNull) {
  StealDeque dq(2);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
  dq.push(token(7));
  EXPECT_EQ(index_of(dq.pop()), 7u);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(StealDequeTest, GrowPreservesAllItemsInOrder) {
  constexpr std::uintptr_t kItems = 5000;
  StealDeque dq(2);  // forces repeated growth
  for (std::uintptr_t i = 0; i < kItems; ++i) dq.push(token(i));
  EXPECT_GE(dq.capacity(), kItems);
  EXPECT_GT(dq.grows(), 0u);
  for (std::uintptr_t i = kItems; i-- > 0;) {
    EXPECT_EQ(index_of(dq.pop()), i);
  }
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(StealDequeTest, InterleavedPushPopReusesSlots) {
  StealDeque dq(4);
  std::uintptr_t next = 0;
  std::uintptr_t live = 0;
  for (int round = 0; round < 1000; ++round) {
    dq.push(token(next++));
    dq.push(token(next++));
    live += 2;
    if (round % 3 == 0) {
      ASSERT_NE(dq.pop(), nullptr);
      --live;
    }
  }
  std::uintptr_t drained = 0;
  while (dq.pop() != nullptr) ++drained;
  EXPECT_EQ(drained, live);
}

/// The race the lock-free algorithm exists for: one owner pushing and
/// popping on a tiny initial buffer (constant growth) while several
/// thieves hammer steal().  Every item must be delivered exactly once.
TEST(StealDequeTest, GrowStealRaceDeliversEveryItemExactlyOnce) {
  constexpr std::uintptr_t kItems = 100000;
  constexpr int kThieves = 3;
  StealDeque dq(2);
  std::vector<std::atomic<int>> delivered(kItems);
  std::atomic<std::uintptr_t> taken{0};

  auto take = [&](void* item) {
    if (item == nullptr) return false;
    delivered[index_of(item)].fetch_add(1, std::memory_order_relaxed);
    taken.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (taken.load(std::memory_order_relaxed) < kItems) {
        if (!take(dq.steal())) std::this_thread::yield();
      }
    });
  }

  // Owner: pushes everything, popping a share along the way (exercising
  // the last-item pop/steal race), then helps drain.
  for (std::uintptr_t i = 0; i < kItems; ++i) {
    dq.push(token(i));
    if (i % 2 == 0) take(dq.pop());
  }
  while (taken.load(std::memory_order_relaxed) < kItems) {
    if (!take(dq.pop())) std::this_thread::yield();
  }
  for (auto& t : thieves) t.join();

  for (std::uintptr_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(delivered[i].load(), 1) << "item " << i;
  }
  EXPECT_TRUE(dq.empty());
}

TEST(StealBatchTest, TakesFifoPrefix) {
  StealDeque dq;
  for (std::uintptr_t i = 0; i < 10; ++i) dq.push(token(i));
  void* items[4];
  ASSERT_EQ(dq.steal_batch(items, 4), 4u);
  for (std::uintptr_t i = 0; i < 4; ++i) {
    EXPECT_EQ(index_of(items[i]), i);  // oldest first
  }
  // The owner's end is untouched: pop still returns the newest.
  EXPECT_EQ(index_of(dq.pop()), 9u);
  EXPECT_EQ(index_of(dq.steal()), 4u);
}

TEST(StealBatchTest, StopsAtAvailableItems) {
  StealDeque dq;
  for (std::uintptr_t i = 0; i < 3; ++i) dq.push(token(i));
  void* items[8];
  EXPECT_EQ(dq.steal_batch(items, 8), 3u);
  EXPECT_TRUE(dq.empty());
  EXPECT_EQ(dq.steal_batch(items, 8), 0u);  // empty deque
  dq.push(token(42));
  EXPECT_EQ(dq.steal_batch(items, 0), 0u);  // zero-size request
  EXPECT_EQ(index_of(dq.pop()), 42u);
}

/// steal_batch under the Chase-Lev top/bottom race: thieves batching
/// away the top while the owner pushes and pops the bottom.  Every item
/// must be delivered exactly once, batches must stay FIFO runs.
TEST(StealBatchTest, OwnerRaceDeliversEveryItemExactlyOnce) {
  constexpr std::uintptr_t kItems = 100000;
  constexpr int kThieves = 3;
  constexpr std::size_t kBatch = 8;
  StealDeque dq(2);
  std::vector<std::atomic<int>> delivered(kItems);
  std::atomic<std::uintptr_t> taken{0};

  auto take = [&](void* item) {
    if (item == nullptr) return false;
    delivered[index_of(item)].fetch_add(1, std::memory_order_relaxed);
    taken.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      void* items[kBatch];
      while (taken.load(std::memory_order_relaxed) < kItems) {
        const std::size_t got = dq.steal_batch(items, kBatch);
        if (got == 0) {
          std::this_thread::yield();
          continue;
        }
        // A batch is a FIFO run: strictly ascending indices.
        for (std::size_t k = 1; k < got; ++k) {
          EXPECT_LT(index_of(items[k - 1]), index_of(items[k]));
        }
        for (std::size_t k = 0; k < got; ++k) take(items[k]);
      }
    });
  }

  for (std::uintptr_t i = 0; i < kItems; ++i) {
    dq.push(token(i));
    if (i % 2 == 0) take(dq.pop());
  }
  while (taken.load(std::memory_order_relaxed) < kItems) {
    if (!take(dq.pop())) std::this_thread::yield();
  }
  for (auto& t : thieves) t.join();

  for (std::uintptr_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(delivered[i].load(), 1) << "item " << i;
  }
  EXPECT_TRUE(dq.empty());
}

}  // namespace
}  // namespace taskprof::rt
