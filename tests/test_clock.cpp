#include "common/clock.hpp"

#include <gtest/gtest.h>

namespace taskprof {
namespace {

TEST(SteadyClock, Monotonic) {
  SteadyClock clock;
  Ticks last = clock.now();
  for (int i = 0; i < 1000; ++i) {
    const Ticks now = clock.now();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(SteadyClock, AdvancesEventually) {
  SteadyClock clock;
  const Ticks start = clock.now();
  Ticks now = start;
  while (now == start) now = clock.now();
  EXPECT_GT(now, start);
}

TEST(ManualClock, StartsAtZeroByDefault) {
  ManualClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(ManualClock, StartsAtGivenTime) {
  ManualClock clock(1234);
  EXPECT_EQ(clock.now(), 1234);
}

TEST(ManualClock, AdvanceAccumulates) {
  ManualClock clock;
  clock.advance(10);
  clock.advance(5);
  EXPECT_EQ(clock.now(), 15);
}

TEST(ManualClock, SetJumps) {
  ManualClock clock;
  clock.set(100);
  EXPECT_EQ(clock.now(), 100);
}

TEST(ManualClock, UsableThroughBaseInterface) {
  ManualClock manual(7);
  const Clock& clock = manual;
  EXPECT_EQ(clock.now(), 7);
  manual.advance(3);
  EXPECT_EQ(clock.now(), 10);
}

}  // namespace
}  // namespace taskprof
