// The diagnosis engine: every seeded anti-pattern shape must be flagged
// by its detector (at problem severity, pointing at the offending
// construct), the clean shape must stay finding-free, and the work/span
// accounting must agree with the trace analyzer's independent
// critical-chain computation.
#include "diagnose/diagnose.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bots/kernel.hpp"
#include "check/shapes.hpp"
#include "diagnose/detectors.hpp"
#include "diagnose/render.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"
#include "trace/analysis.hpp"
#include "trace/recorder.hpp"

namespace taskprof {
namespace {

diag::DiagnosisInput input_for(const check::ShapeRun& run) {
  diag::DiagnosisInput input;
  input.profile = &run.profile;
  input.registry = run.registry.get();
  input.trace = &run.trace;
  input.telemetry = &run.telemetry;
  return input;
}

const diag::Diagnosis* find_detector(const diag::DiagnosisReport& report,
                                     const std::string& id) {
  for (const diag::Diagnosis& d : report.findings) {
    if (d.detector == id) return &d;
  }
  return nullptr;
}

TEST(Diagnose, EverySeededAntiPatternIsFlaggedWithItsCallPath) {
  for (const check::AntiPattern pattern : check::kAllAntiPatterns) {
    if (pattern == check::AntiPattern::kClean) continue;
    SCOPED_TRACE(check::anti_pattern_name(pattern));
    const check::ShapeRun run = check::run_anti_pattern(pattern);
    const diag::DiagnosisReport report = diag::run_diagnosis(input_for(run));
    const diag::Diagnosis* d =
        find_detector(report, check::anti_pattern_detector(pattern));
    ASSERT_NE(d, nullptr) << "expected detector did not fire";
    EXPECT_EQ(d->severity, diag::Severity::kProblem);
    ASSERT_FALSE(d->sites.empty());
    EXPECT_EQ(d->sites.front().region, run.task_region)
        << "diagnosis points at '" << d->sites.front().name
        << "', not the offending construct";
    EXPECT_FALSE(d->summary.empty());
    EXPECT_FALSE(d->remediation.empty());
    EXPECT_FALSE(d->metrics.empty());
  }
}

TEST(Diagnose, CleanShapeHasNoFindings) {
  const check::ShapeRun run =
      check::run_anti_pattern(check::AntiPattern::kClean);
  const diag::DiagnosisReport report = diag::run_diagnosis(input_for(run));
  EXPECT_EQ(report.findings.size(), 0u);
  EXPECT_EQ(report.max_severity(), diag::Severity::kInfo);
  EXPECT_TRUE(report.has_workspan);
  EXPECT_GT(report.workspan.logical_parallelism(), 2.0);
}

TEST(Diagnose, FindingsAreRankedBySeverityThenScore) {
  const check::ShapeRun run =
      check::run_anti_pattern(check::AntiPattern::kCreationStorm);
  diag::DiagnosisReport report = diag::run_diagnosis(input_for(run));
  for (std::size_t i = 1; i < report.findings.size(); ++i) {
    const diag::Diagnosis& prev = report.findings[i - 1];
    const diag::Diagnosis& cur = report.findings[i];
    EXPECT_TRUE(prev.severity > cur.severity ||
                (prev.severity == cur.severity && prev.score >= cur.score));
  }
}

// Work/span must agree with the trace analyzer's independently computed
// critical chain — same definition, separate implementations.
TEST(Diagnose, FibWorkSpanMatchesTraceCriticalChainWithin10Percent) {
  RegionRegistry registry;
  rt::SimRuntime runtime;
  Instrumentor instrumentor(registry, MeasureOptions{});
  trace::TraceRecorder recorder;
  rt::FanoutHooks fanout;
  fanout.add(&instrumentor);
  fanout.add(&recorder);
  runtime.set_hooks(&fanout);
  auto kernel = bots::make_kernel("fib");
  ASSERT_NE(kernel, nullptr);
  bots::KernelConfig config;
  config.threads = 4;
  config.size = bots::SizeClass::kTest;
  const bots::KernelResult result = kernel->run(runtime, registry, config);
  ASSERT_TRUE(result.ok) << result.check;
  runtime.set_hooks(nullptr);
  instrumentor.finalize();

  const trace::Trace recorded = recorder.take();
  const trace::TraceAnalysis analysis = trace::analyze_trace(recorded);
  const diag::WorkSpanSummary ws =
      diag::compute_workspan(analysis, registry);

  ASSERT_GT(ws.span, 0);
  ASSERT_GT(analysis.critical_chain_time, 0);
  const double span_ratio = static_cast<double>(ws.span) /
                            static_cast<double>(analysis.critical_chain_time);
  EXPECT_GT(span_ratio, 0.9);
  EXPECT_LT(span_ratio, 1.1);
  EXPECT_EQ(ws.span_length, analysis.critical_chain_length);

  const double parallelism = ws.logical_parallelism();
  const double trace_estimate =
      static_cast<double>(analysis.total_active) /
      static_cast<double>(analysis.critical_chain_time);
  EXPECT_GT(parallelism / trace_estimate, 0.9);
  EXPECT_LT(parallelism / trace_estimate, 1.1);

  // The span is a real root-to-leaf creation chain.
  EXPECT_EQ(static_cast<int>(ws.span_tasks.size()), ws.span_length);
}

TEST(Diagnose, ReplayFallbackDetectorReadsTelemetryReasons) {
  check::ShapeRun run = check::run_anti_pattern(check::AntiPattern::kClean);
  telemetry::Snapshot snap;
  snap.counters[static_cast<std::size_t>(
      telemetry::Counter::kTaskgraphFallbacks)] = 2;
  snap.counters[static_cast<std::size_t>(
      telemetry::Counter::kTaskgraphDivergences)] = 3;
  snap.counters[static_cast<std::size_t>(
      telemetry::Counter::kTaskgraphDivergeShortSpawn)] = 2;
  snap.counters[static_cast<std::size_t>(
      telemetry::Counter::kTaskgraphDivergeStructure)] = 1;
  diag::DiagnosisInput input = input_for(run);
  input.telemetry = &snap;
  const diag::DiagnosisReport report = diag::run_diagnosis(input);
  const diag::Diagnosis* d = find_detector(report, "replay_fallback");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, diag::Severity::kInfo);
  EXPECT_NE(d->summary.find("2 short spawn"), std::string::npos);
  EXPECT_NE(d->summary.find("1 structure mismatch"), std::string::npos);
}

TEST(Diagnose, ProfileOnlyInputStillRunsConstructDetectors) {
  const check::ShapeRun run =
      check::run_anti_pattern(check::AntiPattern::kGranularityCollapse);
  diag::DiagnosisInput input;
  input.profile = &run.profile;
  input.registry = run.registry.get();
  const diag::DiagnosisReport report = diag::run_diagnosis(input);
  EXPECT_FALSE(report.has_workspan);
  const diag::Diagnosis* d = find_detector(report, "granularity_collapse");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, diag::Severity::kProblem);
}

TEST(Diagnose, ParseSeverityRoundTrips) {
  diag::Severity s;
  EXPECT_TRUE(diag::parse_severity("info", &s));
  EXPECT_EQ(s, diag::Severity::kInfo);
  EXPECT_TRUE(diag::parse_severity("warning", &s));
  EXPECT_EQ(s, diag::Severity::kWarning);
  EXPECT_TRUE(diag::parse_severity("problem", &s));
  EXPECT_EQ(s, diag::Severity::kProblem);
  EXPECT_FALSE(diag::parse_severity("fatal", &s));
}

TEST(Diagnose, AnnotationsCarrySeverityDetectorAndCallPath) {
  const check::ShapeRun run =
      check::run_anti_pattern(check::AntiPattern::kCreationStorm);
  const diag::DiagnosisReport report = diag::run_diagnosis(input_for(run));
  ASSERT_FALSE(report.findings.empty());
  const std::vector<trace::TraceAnnotation> notes =
      diag::diagnosis_annotations(report);
  ASSERT_EQ(notes.size(), report.findings.size());
  const trace::TraceAnnotation& note = notes.front();
  EXPECT_EQ(note.name, "diagnosis: " + report.findings.front().detector);
  auto has_arg = [&note](const std::string& key) {
    return std::any_of(note.args.begin(), note.args.end(),
                       [&key](const auto& kv) { return kv.first == key; });
  };
  EXPECT_TRUE(has_arg("severity"));
  EXPECT_TRUE(has_arg("detector"));
  EXPECT_TRUE(has_arg("call_path"));
}

}  // namespace
}  // namespace taskprof
